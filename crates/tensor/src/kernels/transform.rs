//! Data-movement kernels: transpose, concat, pad, slice, flatten, resize.
//!
//! These ops are dtype-generic: they move elements without arithmetic, so
//! quantized tensors keep their parameters.

use super::{kerr, KernelError};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Gather elements of `input` at flat source offsets into a new tensor of
/// `out_shape`, preserving dtype and quant params.
fn gather_by_offsets(
    input: &Tensor,
    out_shape: Shape,
    offsets: &[usize],
) -> Result<Tensor, KernelError> {
    debug_assert_eq!(out_shape.num_elements(), offsets.len());
    if input.dtype().is_float() {
        let x = input.as_f32().unwrap();
        let out: Vec<f32> = offsets.iter().map(|&o| x[o]).collect();
        Tensor::from_f32(out_shape, out).map_err(|e| kerr(e.to_string()))
    } else {
        let x: Vec<i32> = input.iter_int().collect();
        let out: Vec<i32> = offsets.iter().map(|&o| x[o]).collect();
        Tensor::from_int_values(out_shape, &out, input.dtype(), input.quant())
            .map_err(|e| kerr(e.to_string()))
    }
}

/// Permute axes: `transpose(x, axes)`.
pub fn transpose(input: &Tensor, axes: &[usize]) -> Result<Tensor, KernelError> {
    let dims = input.shape().dims();
    if axes.len() != dims.len() {
        return Err(kerr(format!(
            "transpose axes {axes:?} wrong rank for {dims:?}"
        )));
    }
    let mut seen = vec![false; dims.len()];
    for &a in axes {
        if a >= dims.len() || seen[a] {
            return Err(kerr(format!("transpose axes {axes:?} not a permutation")));
        }
        seen[a] = true;
    }
    let out_dims: Vec<usize> = axes.iter().map(|&a| dims[a]).collect();
    let out_shape = Shape::new(out_dims);
    let in_strides = input.shape().strides();
    let n = out_shape.num_elements();
    let mut offsets = Vec::with_capacity(n);
    for flat in 0..n {
        let oidx = out_shape.unravel(flat);
        let src: usize = oidx
            .iter()
            .zip(axes)
            .map(|(&i, &a)| i * in_strides[a])
            .sum();
        offsets.push(src);
    }
    gather_by_offsets(input, out_shape, &offsets)
}

/// Concatenate along `axis`. All inputs must share dtype/rank and agree on
/// every other dimension; quant params are taken from the first input (QNN
/// concat requires pre-aligned scales, which the frontends guarantee).
pub fn concat(inputs: &[&Tensor], axis: usize) -> Result<Tensor, KernelError> {
    if inputs.is_empty() {
        return Err(kerr("concat of zero tensors".to_string()));
    }
    let first = inputs[0];
    let rank = first.shape().rank();
    if axis >= rank {
        return Err(kerr(format!(
            "concat axis {axis} out of range for rank {rank}"
        )));
    }
    let mut out_dims = first.shape().dims().to_vec();
    let mut axis_total = 0usize;
    for t in inputs {
        if t.dtype() != first.dtype() || t.shape().rank() != rank {
            return Err(kerr("concat dtype/rank mismatch".to_string()));
        }
        for (d, (&a, &b)) in t
            .shape()
            .dims()
            .iter()
            .zip(first.shape().dims())
            .enumerate()
        {
            if d != axis && a != b {
                return Err(kerr(format!(
                    "concat non-axis dim {d} mismatch: {a} vs {b}"
                )));
            }
        }
        axis_total += t.shape().dims()[axis];
    }
    out_dims[axis] = axis_total;
    let out_shape = Shape::new(out_dims);

    // outer = product of dims before axis; inner = product after.
    let outer: usize = first.shape().dims()[..axis].iter().product();
    let inner: usize = first.shape().dims()[axis + 1..].iter().product();

    if first.dtype().is_float() {
        let mut out = Vec::with_capacity(out_shape.num_elements());
        for o in 0..outer {
            for t in inputs {
                let ax = t.shape().dims()[axis];
                let x = t.as_f32().unwrap();
                out.extend_from_slice(&x[o * ax * inner..(o + 1) * ax * inner]);
            }
        }
        Tensor::from_f32(out_shape, out).map_err(|e| kerr(e.to_string()))
    } else {
        let mut out: Vec<i32> = Vec::with_capacity(out_shape.num_elements());
        let ints: Vec<Vec<i32>> = inputs.iter().map(|t| t.iter_int().collect()).collect();
        for o in 0..outer {
            for (t, x) in inputs.iter().zip(&ints) {
                let ax = t.shape().dims()[axis];
                out.extend_from_slice(&x[o * ax * inner..(o + 1) * ax * inner]);
            }
        }
        Tensor::from_int_values(out_shape, &out, first.dtype(), first.quant())
            .map_err(|e| kerr(e.to_string()))
    }
}

/// Constant-pad with per-dimension (before, after) amounts.
pub fn pad(input: &Tensor, pads: &[(usize, usize)], value: f32) -> Result<Tensor, KernelError> {
    let dims = input.shape().dims();
    if pads.len() != dims.len() {
        return Err(kerr(format!(
            "pad spec rank {} != tensor rank {}",
            pads.len(),
            dims.len()
        )));
    }
    let out_dims: Vec<usize> = dims
        .iter()
        .zip(pads)
        .map(|(&d, &(b, a))| d + b + a)
        .collect();
    let out_shape = Shape::new(out_dims);
    let n = out_shape.num_elements();

    if input.dtype().is_float() {
        let x = input.as_f32().unwrap();
        let mut out = vec![value; n];
        for (flat, o) in out.iter_mut().enumerate() {
            let oidx = out_shape.unravel(flat);
            let mut in_idx = Vec::with_capacity(dims.len());
            let mut inside = true;
            for (d, &i) in oidx.iter().enumerate() {
                let (b, _) = pads[d];
                if i < b || i >= b + dims[d] {
                    inside = false;
                    break;
                }
                in_idx.push(i - b);
            }
            if inside {
                *o = x[input.shape().offset(&in_idx)];
            }
        }
        Tensor::from_f32(out_shape, out).map_err(|e| kerr(e.to_string()))
    } else {
        let qp = input.quant();
        // For quantized tensors, the pad value is in the real domain; store
        // its quantized image (TFLite pads with the zero point for value 0).
        let qv = qp
            .map(|q| q.quantize(value, input.dtype()))
            .unwrap_or(value as i32);
        let x: Vec<i32> = input.iter_int().collect();
        let mut out = vec![qv; n];
        for (flat, o) in out.iter_mut().enumerate() {
            let oidx = out_shape.unravel(flat);
            let mut in_idx = Vec::with_capacity(dims.len());
            let mut inside = true;
            for (d, &i) in oidx.iter().enumerate() {
                let (b, _) = pads[d];
                if i < b || i >= b + dims[d] {
                    inside = false;
                    break;
                }
                in_idx.push(i - b);
            }
            if inside {
                *o = x[input.shape().offset(&in_idx)];
            }
        }
        Tensor::from_int_values(out_shape, &out, input.dtype(), qp).map_err(|e| kerr(e.to_string()))
    }
}

/// `strided_slice(begin, end)` with unit strides.
pub fn slice(input: &Tensor, begin: &[usize], end: &[usize]) -> Result<Tensor, KernelError> {
    let dims = input.shape().dims();
    if begin.len() != dims.len() || end.len() != dims.len() {
        return Err(kerr("slice begin/end rank mismatch".to_string()));
    }
    for d in 0..dims.len() {
        if begin[d] >= end[d] || end[d] > dims[d] {
            return Err(kerr(format!(
                "slice range [{}, {}) invalid for dim {d} of size {}",
                begin[d], end[d], dims[d]
            )));
        }
    }
    let out_dims: Vec<usize> = begin.iter().zip(end).map(|(&b, &e)| e - b).collect();
    let out_shape = Shape::new(out_dims);
    let n = out_shape.num_elements();
    let mut offsets = Vec::with_capacity(n);
    for flat in 0..n {
        let oidx = out_shape.unravel(flat);
        let src_idx: Vec<usize> = oidx.iter().zip(begin).map(|(&i, &b)| i + b).collect();
        offsets.push(input.shape().offset(&src_idx));
    }
    gather_by_offsets(input, out_shape, &offsets)
}

/// `batch_flatten`: `[n, ...] → [n, prod(...)]`.
pub fn batch_flatten(input: &Tensor) -> Result<Tensor, KernelError> {
    let dims = input.shape().dims();
    if dims.is_empty() {
        return Err(kerr("batch_flatten needs rank >= 1".to_string()));
    }
    let n = dims[0];
    let rest: usize = dims[1..].iter().product();
    input.reshaped([n, rest]).map_err(|e| kerr(e.to_string()))
}

/// Interpolation used by [`resize2d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeMethod {
    /// Nearest neighbour (asymmetric coordinates).
    Nearest,
    /// Bilinear (half-pixel coordinates).
    Bilinear,
}

/// Resize `NCHW` activations to `(out_h, out_w)`.
pub fn resize2d(
    input: &Tensor,
    out_h: usize,
    out_w: usize,
    method: ResizeMethod,
) -> Result<Tensor, KernelError> {
    let dims = input.shape().dims();
    if dims.len() != 4 {
        return Err(kerr("resize2d expects rank-4 input".to_string()));
    }
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    if out_h == 0 || out_w == 0 {
        return Err(kerr("resize2d target must be non-zero".to_string()));
    }
    let fsrc = input.to_f32();
    let x = fsrc.as_f32().unwrap();
    let mut out = vec![0.0f32; n * c * out_h * out_w];
    let sy = h as f32 / out_h as f32;
    let sx = w as f32 / out_w as f32;
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let obase = (ni * c + ci) * out_h * out_w;
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let v = match method {
                        ResizeMethod::Nearest => {
                            let iy = ((oy as f32 * sy) as usize).min(h - 1);
                            let ix = ((ox as f32 * sx) as usize).min(w - 1);
                            x[base + iy * w + ix]
                        }
                        ResizeMethod::Bilinear => {
                            let fy = ((oy as f32 + 0.5) * sy - 0.5).clamp(0.0, (h - 1) as f32);
                            let fx = ((ox as f32 + 0.5) * sx - 0.5).clamp(0.0, (w - 1) as f32);
                            let y0 = fy.floor() as usize;
                            let x0 = fx.floor() as usize;
                            let y1 = (y0 + 1).min(h - 1);
                            let x1 = (x0 + 1).min(w - 1);
                            let dy = fy - y0 as f32;
                            let dx = fx - x0 as f32;
                            let v00 = x[base + y0 * w + x0];
                            let v01 = x[base + y0 * w + x1];
                            let v10 = x[base + y1 * w + x0];
                            let v11 = x[base + y1 * w + x1];
                            v00 * (1.0 - dy) * (1.0 - dx)
                                + v01 * (1.0 - dy) * dx
                                + v10 * dy * (1.0 - dx)
                                + v11 * dy * dx
                        }
                    };
                    out[obase + oy * out_w + ox] = v;
                }
            }
        }
    }
    let result = Tensor::from_f32([n, c, out_h, out_w], out).map_err(|e| kerr(e.to_string()))?;
    if input.dtype().is_float() {
        Ok(result)
    } else {
        // Requantize back into the source parameters to stay in the integer
        // domain end-to-end.
        let qp = input.quant().expect("quantized tensor has params");
        result
            .quantize(qp, input.dtype())
            .map_err(|e| kerr(e.to_string()))
    }
}

/// Mean over the given axes (keepdims = false), float only.
pub fn mean_f32(input: &Tensor, axes: &[usize]) -> Result<Tensor, KernelError> {
    let dims = input.shape().dims();
    for &a in axes {
        if a >= dims.len() {
            return Err(kerr(format!("mean axis {a} out of range")));
        }
    }
    let out_dims: Vec<usize> = dims
        .iter()
        .enumerate()
        .filter(|(d, _)| !axes.contains(d))
        .map(|(_, &s)| s)
        .collect();
    let out_shape = Shape::new(out_dims);
    let x = input.as_f32().map_err(|e| kerr(e.to_string()))?;
    let mut sums = vec![0.0f32; out_shape.num_elements().max(1)];
    let mut counts = vec![0usize; sums.len()];
    for (flat, &v) in x.iter().enumerate() {
        let idx = input.shape().unravel(flat);
        let out_idx: Vec<usize> = idx
            .iter()
            .enumerate()
            .filter(|(d, _)| !axes.contains(d))
            .map(|(_, &i)| i)
            .collect();
        let o = if out_idx.is_empty() {
            0
        } else {
            out_shape.offset(&out_idx)
        };
        sums[o] += v;
        counts[o] += 1;
    }
    for (s, &c) in sums.iter_mut().zip(&counts) {
        *s /= c.max(1) as f32;
    }
    Tensor::from_f32(out_shape, sums).map_err(|e| kerr(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;
    use crate::quant::QuantParams;

    #[test]
    fn transpose_2d() {
        let x = Tensor::from_f32([2, 3], (0..6).map(|v| v as f32).collect()).unwrap();
        let y = transpose(&x, &[1, 0]).unwrap();
        assert_eq!(y.shape().dims(), &[3, 2]);
        assert_eq!(y.as_f32().unwrap(), &[0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
    }

    #[test]
    fn transpose_nchw_to_nhwc_roundtrip() {
        let x = Tensor::from_f32([1, 2, 2, 3], (0..12).map(|v| v as f32).collect()).unwrap();
        let nhwc = transpose(&x, &[0, 2, 3, 1]).unwrap();
        let back = transpose(&nhwc, &[0, 3, 1, 2]).unwrap();
        assert!(x.bit_eq(&back));
    }

    #[test]
    fn transpose_rejects_non_permutation() {
        let x = Tensor::zeros_f32([2, 2]);
        assert!(transpose(&x, &[0, 0]).is_err());
        assert!(transpose(&x, &[0]).is_err());
    }

    #[test]
    fn concat_axis1() {
        let a = Tensor::from_f32([2, 1], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_f32([2, 2], vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let y = concat(&[&a, &b], 1).unwrap();
        assert_eq!(y.shape().dims(), &[2, 3]);
        assert_eq!(y.as_f32().unwrap(), &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_quantized_keeps_params() {
        let qp = QuantParams::new(0.5, 1);
        let a = Tensor::from_int_values([1, 2], &[1, 2], DType::U8, Some(qp)).unwrap();
        let b = Tensor::from_int_values([1, 2], &[3, 4], DType::U8, Some(qp)).unwrap();
        let y = concat(&[&a, &b], 0).unwrap();
        assert_eq!(y.shape().dims(), &[2, 2]);
        assert_eq!(y.quant(), Some(qp));
    }

    #[test]
    fn concat_rejects_mismatch() {
        let a = Tensor::zeros_f32([2, 2]);
        let b = Tensor::zeros_f32([3, 3]);
        assert!(concat(&[&a, &b], 0).is_err());
    }

    #[test]
    fn pad_spatial() {
        let x = Tensor::from_f32([1, 1, 1, 1], vec![5.0]).unwrap();
        let y = pad(&x, &[(0, 0), (0, 0), (1, 1), (1, 1)], 0.0).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 3, 3]);
        let v = y.as_f32().unwrap();
        assert_eq!(v[4], 5.0);
        assert_eq!(v.iter().filter(|&&e| e == 0.0).count(), 8);
    }

    #[test]
    fn pad_quantized_uses_zero_point() {
        let qp = QuantParams::new(1.0, 42);
        let x = Tensor::from_int_values([1], &[7], DType::U8, Some(qp)).unwrap();
        let y = pad(&x, &[(1, 1)], 0.0).unwrap();
        assert_eq!(y.iter_int().collect::<Vec<_>>(), vec![42, 7, 42]);
    }

    #[test]
    fn slice_middle() {
        let x = Tensor::from_f32([4, 4], (0..16).map(|v| v as f32).collect()).unwrap();
        let y = slice(&x, &[1, 1], &[3, 3]).unwrap();
        assert_eq!(y.shape().dims(), &[2, 2]);
        assert_eq!(y.as_f32().unwrap(), &[5.0, 6.0, 9.0, 10.0]);
    }

    #[test]
    fn slice_rejects_bad_range() {
        let x = Tensor::zeros_f32([2, 2]);
        assert!(slice(&x, &[0, 0], &[3, 2]).is_err());
        assert!(slice(&x, &[1, 0], &[1, 2]).is_err());
    }

    #[test]
    fn batch_flatten_shape() {
        let x = Tensor::zeros_f32([2, 3, 4, 5]);
        let y = batch_flatten(&x).unwrap();
        assert_eq!(y.shape().dims(), &[2, 60]);
    }

    #[test]
    fn resize_nearest_doubles() {
        let x = Tensor::from_f32([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = resize2d(&x, 4, 4, ResizeMethod::Nearest).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 4, 4]);
        let v = y.as_f32().unwrap();
        assert_eq!(v[0], 1.0);
        assert_eq!(v[3], 2.0);
        assert_eq!(v[15], 4.0);
    }

    #[test]
    fn resize_bilinear_midpoint() {
        let x = Tensor::from_f32([1, 1, 1, 2], vec![0.0, 2.0]).unwrap();
        let y = resize2d(&x, 1, 4, ResizeMethod::Bilinear).unwrap();
        let v = y.as_f32().unwrap();
        // Half-pixel: values interpolate smoothly between 0 and 2.
        assert!(v[0] < v[1] && v[1] < v[2] && v[2] < v[3]);
    }

    #[test]
    fn mean_over_spatial_axes() {
        let x =
            Tensor::from_f32([1, 2, 2, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 5.0, 5.0, 5.0]).unwrap();
        let y = mean_f32(&x, &[2, 3]).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2]);
        assert_eq!(y.as_f32().unwrap(), &[2.5, 5.0]);
    }
}
