//! Softmax-family kernels (classification heads of every showcase model).

use super::{kerr, KernelError};
use crate::tensor::Tensor;

/// Numerically-stable softmax along the last axis.
pub fn softmax_f32(input: &Tensor) -> Result<Tensor, KernelError> {
    let dims = input.shape().dims();
    if dims.is_empty() {
        return Err(kerr("softmax needs rank >= 1".to_string()));
    }
    let axis_len = *dims.last().unwrap();
    let x = input.as_f32().map_err(|e| kerr(e.to_string()))?;
    let mut out = vec![0.0f32; x.len()];
    for (row_in, row_out) in x.chunks_exact(axis_len).zip(out.chunks_exact_mut(axis_len)) {
        let max = row_in.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0f32;
        for (o, &v) in row_out.iter_mut().zip(row_in) {
            *o = (v - max).exp();
            sum += *o;
        }
        for o in row_out.iter_mut() {
            *o /= sum;
        }
    }
    Tensor::from_f32(input.shape().clone(), out).map_err(|e| kerr(e.to_string()))
}

/// `log(softmax(x))` along the last axis.
pub fn log_softmax_f32(input: &Tensor) -> Result<Tensor, KernelError> {
    let s = softmax_f32(input)?;
    let v: Vec<f32> = s
        .as_f32()
        .unwrap()
        .iter()
        .map(|&p| p.max(f32::MIN_POSITIVE).ln())
        .collect();
    Tensor::from_f32(input.shape().clone(), v).map_err(|e| kerr(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_one() {
        let x = Tensor::from_f32([2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let y = softmax_f32(&x).unwrap();
        for row in y.as_f32().unwrap().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn preserves_argmax() {
        let x = Tensor::from_f32([1, 4], vec![0.1, 5.0, -2.0, 1.0]).unwrap();
        assert_eq!(softmax_f32(&x).unwrap().argmax(), 1);
    }

    #[test]
    fn stable_for_large_logits() {
        let x = Tensor::from_f32([1, 2], vec![1000.0, 1001.0]).unwrap();
        let y = softmax_f32(&x).unwrap();
        let v = y.as_f32().unwrap();
        assert!(v.iter().all(|p| p.is_finite()));
        assert!((v[0] + v[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = Tensor::from_f32([1, 3], vec![0.5, 1.5, -0.5]).unwrap();
        let a = log_softmax_f32(&x).unwrap();
        let b = softmax_f32(&x).unwrap();
        for (la, p) in a.as_f32().unwrap().iter().zip(b.as_f32().unwrap()) {
            assert!((la - p.ln()).abs() < 1e-5);
        }
    }
}
