//! Element-wise unary and (broadcasting) binary kernels, float and quantized.

use super::{kerr, KernelError};
use crate::dtype::DType;
use crate::quant::QuantParams;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Unary float op applied element-wise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UnaryOp {
    /// `max(x, 0)`
    Relu,
    /// `min(max(x, 0), 6)`
    Relu6,
    /// `x if x > 0 else alpha * x`
    LeakyRelu(f32),
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// `clip(x, lo, hi)`
    Clip(f32, f32),
    /// `sqrt(x)`
    Sqrt,
    /// `exp(x)`
    Exp,
    /// `-x`
    Neg,
}

impl UnaryOp {
    /// Evaluate on one float.
    pub fn eval(self, x: f32) -> f32 {
        match self {
            UnaryOp::Relu => x.max(0.0),
            UnaryOp::Relu6 => x.clamp(0.0, 6.0),
            UnaryOp::LeakyRelu(a) => {
                if x > 0.0 {
                    x
                } else {
                    a * x
                }
            }
            UnaryOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            UnaryOp::Tanh => x.tanh(),
            UnaryOp::Clip(lo, hi) => x.clamp(lo, hi),
            UnaryOp::Sqrt => x.sqrt(),
            UnaryOp::Exp => x.exp(),
            UnaryOp::Neg => -x,
        }
    }
}

/// Apply a unary op.
///
/// Float tensors are mapped directly. Quantized tensors support the
/// clamp-family ops (`Relu`, `Relu6`, `Clip`) natively in the integer domain
/// (clamping at the quantized image of the real bound, like TFLite's fused
/// activations); other ops go through dequantize → op → requantize.
pub fn unary(input: &Tensor, op: UnaryOp) -> Result<Tensor, KernelError> {
    if input.dtype().is_float() {
        let v: Vec<f32> = input
            .as_f32()
            .unwrap()
            .iter()
            .map(|&x| op.eval(x))
            .collect();
        return Tensor::from_f32(input.shape().clone(), v).map_err(|e| kerr(e.to_string()));
    }
    let qp = input
        .quant()
        .ok_or_else(|| kerr("quantized unary requires quant params".to_string()))?;
    let (dlo, dhi) = input.dtype().int_range().expect("quantized dtype");
    let clamp_q = |lo: f32, hi: f32| -> (i32, i32) {
        (
            qp.quantize(lo, input.dtype()).max(dlo),
            qp.quantize(hi, input.dtype()).min(dhi),
        )
    };
    match op {
        UnaryOp::Relu | UnaryOp::Relu6 | UnaryOp::Clip(..) => {
            let (qlo, qhi) = match op {
                UnaryOp::Relu => (qp.zero_point.max(dlo), dhi),
                UnaryOp::Relu6 => clamp_q(0.0, 6.0),
                UnaryOp::Clip(lo, hi) => clamp_q(lo, hi),
                _ => unreachable!(),
            };
            let vals: Vec<i32> = input.iter_int().map(|v| v.clamp(qlo, qhi)).collect();
            Tensor::from_int_values(input.shape().clone(), &vals, input.dtype(), Some(qp))
                .map_err(|e| kerr(e.to_string()))
        }
        _ => {
            // Dequantize, evaluate, requantize with the same params — the
            // lookup-table strategy integer runtimes use.
            let f = input.to_f32();
            let vals: Vec<i32> = f
                .as_f32()
                .unwrap()
                .iter()
                .map(|&x| qp.quantize(op.eval(x), input.dtype()))
                .collect();
            Tensor::from_int_values(input.shape().clone(), &vals, input.dtype(), Some(qp))
                .map_err(|e| kerr(e.to_string()))
        }
    }
}

/// Binary float op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// `max(a, b)`
    Maximum,
    /// `min(a, b)`
    Minimum,
}

impl BinaryOp {
    /// Evaluate on two floats.
    pub fn eval(self, a: f32, b: f32) -> f32 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => a / b,
            BinaryOp::Maximum => a.max(b),
            BinaryOp::Minimum => a.min(b),
        }
    }
}

/// Broadcasting float binary op.
pub fn binary_f32(a: &Tensor, b: &Tensor, op: BinaryOp) -> Result<Tensor, KernelError> {
    let out_shape = a
        .shape()
        .broadcast(b.shape())
        .ok_or_else(|| kerr(format!("cannot broadcast {} with {}", a.shape(), b.shape())))?;
    let av = a.as_f32().map_err(|e| kerr(e.to_string()))?;
    let bv = b.as_f32().map_err(|e| kerr(e.to_string()))?;
    let n = out_shape.num_elements();
    let mut out = vec![0.0f32; n];
    let a_idx = BroadcastIndexer::new(a.shape(), &out_shape);
    let b_idx = BroadcastIndexer::new(b.shape(), &out_shape);
    for (i, o) in out.iter_mut().enumerate() {
        *o = op.eval(av[a_idx.map(i, &out_shape)], bv[b_idx.map(i, &out_shape)]);
    }
    Tensor::from_f32(out_shape, out).map_err(|e| kerr(e.to_string()))
}

/// Quantized addition (`qnn.add`): rescale both operands into the output's
/// quantization and add, with saturation.
pub fn qadd(
    a: &Tensor,
    b: &Tensor,
    a_q: QuantParams,
    b_q: QuantParams,
    out_q: QuantParams,
    out_dtype: DType,
) -> Result<Tensor, KernelError> {
    let out_shape = a
        .shape()
        .broadcast(b.shape())
        .ok_or_else(|| kerr(format!("cannot broadcast {} with {}", a.shape(), b.shape())))?;
    if !a.dtype().is_quantized() || !b.dtype().is_quantized() {
        return Err(kerr("qadd expects quantized operands".to_string()));
    }
    let av: Vec<i32> = a.iter_int().collect();
    let bv: Vec<i32> = b.iter_int().collect();
    let a_idx = BroadcastIndexer::new(a.shape(), &out_shape);
    let b_idx = BroadcastIndexer::new(b.shape(), &out_shape);
    let (lo, hi) = out_dtype.int_range().expect("quantized out dtype");
    let n = out_shape.num_elements();
    let mut out = vec![0i32; n];
    for (i, o) in out.iter_mut().enumerate() {
        let ra = a_q.dequantize(av[a_idx.map(i, &out_shape)]);
        let rb = b_q.dequantize(bv[b_idx.map(i, &out_shape)]);
        let q = ((ra + rb) / out_q.scale).round() as i64 + out_q.zero_point as i64;
        *o = q.clamp(lo as i64, hi as i64) as i32;
    }
    Tensor::from_int_values(out_shape, &out, out_dtype, Some(out_q))
        .map_err(|e| kerr(e.to_string()))
}

/// Maps a flat output index back to a flat input index under broadcasting.
struct BroadcastIndexer {
    /// Stride per output dimension into the input buffer (0 where broadcast).
    strides: Vec<usize>,
}

impl BroadcastIndexer {
    fn new(in_shape: &Shape, out_shape: &Shape) -> Self {
        let in_dims = in_shape.dims();
        let out_rank = out_shape.rank();
        let offset = out_rank - in_dims.len();
        let in_strides = in_shape.strides();
        let mut strides = vec![0usize; out_rank];
        for i in 0..in_dims.len() {
            strides[offset + i] = if in_dims[i] == 1 { 0 } else { in_strides[i] };
        }
        BroadcastIndexer { strides }
    }

    fn map(&self, flat_out: usize, out_shape: &Shape) -> usize {
        let idx = out_shape.unravel(flat_out);
        idx.iter().zip(&self.strides).map(|(&i, &s)| i * s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_float() {
        let x = Tensor::from_f32([4], vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        let y = unary(&x, UnaryOp::Relu).unwrap();
        assert_eq!(y.as_f32().unwrap(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu6_and_clip() {
        let x = Tensor::from_f32([3], vec![-1.0, 3.0, 9.0]).unwrap();
        assert_eq!(
            unary(&x, UnaryOp::Relu6).unwrap().as_f32().unwrap(),
            &[0.0, 3.0, 6.0]
        );
        assert_eq!(
            unary(&x, UnaryOp::Clip(-0.5, 4.0))
                .unwrap()
                .as_f32()
                .unwrap(),
            &[-0.5, 3.0, 4.0]
        );
    }

    #[test]
    fn sigmoid_midpoint() {
        let x = Tensor::from_f32([1], vec![0.0]).unwrap();
        assert!((unary(&x, UnaryOp::Sigmoid).unwrap().as_f32().unwrap()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn quantized_relu_clamps_at_zero_point() {
        let qp = QuantParams::new(0.1, 100);
        let x = Tensor::from_int_values([4], &[50, 100, 150, 255], DType::U8, Some(qp)).unwrap();
        let y = unary(&x, UnaryOp::Relu).unwrap();
        // Values below zero_point (negative reals) clamp up to it.
        assert_eq!(y.iter_int().collect::<Vec<_>>(), vec![100, 100, 150, 255]);
        assert_eq!(y.quant(), Some(qp));
    }

    #[test]
    fn quantized_sigmoid_via_lut_path() {
        let qp = QuantParams::new(0.05, 0);
        let x = Tensor::from_int_values([1], &[0], DType::I8, Some(qp)).unwrap();
        let y = unary(&x, UnaryOp::Sigmoid).unwrap();
        // sigmoid(0) = 0.5 → 0.5/0.05 = 10.
        assert_eq!(y.int_at(0), 10);
    }

    #[test]
    fn binary_broadcast_add() {
        let a = Tensor::from_f32([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_f32([2], vec![10.0, 20.0]).unwrap();
        let y = binary_f32(&a, &b, BinaryOp::Add).unwrap();
        assert_eq!(y.as_f32().unwrap(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn binary_shape_error() {
        let a = Tensor::from_f32([3], vec![0.0; 3]).unwrap();
        let b = Tensor::from_f32([2], vec![0.0; 2]).unwrap();
        assert!(binary_f32(&a, &b, BinaryOp::Mul).is_err());
    }

    #[test]
    fn qadd_matches_real_sum() {
        let qa = QuantParams::new(0.1, 0);
        let qb = QuantParams::new(0.2, 5);
        let qo = QuantParams::new(0.25, 10);
        let a = Tensor::from_int_values([2], &[10, -10], DType::I8, Some(qa)).unwrap(); // 1.0, -1.0
        let b = Tensor::from_int_values([2], &[10, 10], DType::I8, Some(qb)).unwrap(); // 1.0, 1.0
        let y = qadd(&a, &b, qa, qb, qo, DType::I8).unwrap();
        // 2.0/0.25+10 = 18; 0.0/0.25+10 = 10.
        assert_eq!(y.iter_int().collect::<Vec<_>>(), vec![18, 10]);
    }

    #[test]
    fn qadd_saturates() {
        let q = QuantParams::new(1.0, 0);
        let a = Tensor::from_int_values([1], &[100], DType::I8, Some(q)).unwrap();
        let b = Tensor::from_int_values([1], &[100], DType::I8, Some(q)).unwrap();
        let y = qadd(&a, &b, q, q, q, DType::I8).unwrap();
        assert_eq!(y.int_at(0), 127);
    }
}
