//! Float32 2-D convolution (direct algorithm, Rayon-parallel over the
//! batch × output-channel dimension).

use super::{kerr, KernelError};
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Spatial attributes of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Vertical/horizontal stride.
    pub strides: (usize, usize),
    /// Padding as (top, left, bottom, right).
    pub padding: (usize, usize, usize, usize),
    /// Kernel dilation.
    pub dilation: (usize, usize),
    /// Feature-group count; `groups == in_channels` is depthwise.
    pub groups: usize,
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Conv2dParams {
            strides: (1, 1),
            padding: (0, 0, 0, 0),
            dilation: (1, 1),
            groups: 1,
        }
    }
}

impl Conv2dParams {
    /// Unit-stride convolution with symmetric "same"-style padding.
    pub fn same(pad: usize) -> Self {
        Conv2dParams {
            padding: (pad, pad, pad, pad),
            ..Default::default()
        }
    }

    /// Output spatial size for an input `(h, w)` and kernel `(kh, kw)`.
    pub fn out_hw(
        &self,
        h: usize,
        w: usize,
        kh: usize,
        kw: usize,
    ) -> Result<(usize, usize), KernelError> {
        let (pt, pl, pb, pr) = self.padding;
        let eff_kh = (kh - 1) * self.dilation.0 + 1;
        let eff_kw = (kw - 1) * self.dilation.1 + 1;
        let ih = h + pt + pb;
        let iw = w + pl + pr;
        if ih < eff_kh || iw < eff_kw {
            return Err(kerr(format!(
                "conv2d kernel {eff_kh}x{eff_kw} larger than padded input {ih}x{iw}"
            )));
        }
        Ok((
            (ih - eff_kh) / self.strides.0 + 1,
            (iw - eff_kw) / self.strides.1 + 1,
        ))
    }
}

/// `NCHW` × `OIHW` float convolution.
///
/// `weight` has shape `[out_c, in_c/groups, kh, kw]`; `bias`, when present,
/// has shape `[out_c]`.
pub fn conv2d_f32(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: &Conv2dParams,
) -> Result<Tensor, KernelError> {
    let ishape = input.shape().dims();
    let wshape = weight.shape().dims();
    if ishape.len() != 4 || wshape.len() != 4 {
        return Err(kerr(format!(
            "conv2d expects rank-4 input/weight, got {:?} / {:?}",
            ishape, wshape
        )));
    }
    let (n, c, h, w) = (ishape[0], ishape[1], ishape[2], ishape[3]);
    let (oc, wic, kh, kw) = (wshape[0], wshape[1], wshape[2], wshape[3]);
    let groups = params.groups;
    if groups == 0 || c % groups != 0 || oc % groups != 0 {
        return Err(kerr(format!(
            "conv2d groups {groups} incompatible with C={c}, O={oc}"
        )));
    }
    if wic != c / groups {
        return Err(kerr(format!(
            "conv2d weight in-channels {wic} != input C/groups {}",
            c / groups
        )));
    }
    let (oh, ow) = params.out_hw(h, w, kh, kw)?;
    let x = input.as_f32().map_err(|e| kerr(e.to_string()))?;
    let wt = weight.as_f32().map_err(|e| kerr(e.to_string()))?;
    let b = match bias {
        Some(t) => Some(t.as_f32().map_err(|e| kerr(e.to_string()))?),
        None => None,
    };
    if let Some(b) = b {
        if b.len() != oc {
            return Err(kerr(format!(
                "conv2d bias length {} != out channels {oc}",
                b.len()
            )));
        }
    }

    let (pt, pl, _, _) = params.padding;
    let (sh, sw) = params.strides;
    let (dh, dw) = params.dilation;
    let cg = c / groups; // channels per group
    let og = oc / groups; // output channels per group

    let mut out = vec![0.0f32; n * oc * oh * ow];
    // One output image plane (fixed n, fixed oc) per parallel task.
    out.par_chunks_mut(oh * ow)
        .enumerate()
        .for_each(|(plane, out_plane)| {
            let ni = plane / oc;
            let o = plane % oc;
            let g = o / og;
            let bias_v = b.map(|b| b[o]).unwrap_or(0.0);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias_v;
                    for ic in 0..cg {
                        let in_c = g * cg + ic;
                        let x_base = ((ni * c + in_c) * h) * w;
                        let w_base = ((o * cg + ic) * kh) * kw;
                        for ky in 0..kh {
                            let iy = (oy * sh + ky * dh) as isize - pt as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * sw + kx * dw) as isize - pl as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                acc += x[x_base + iy as usize * w + ix as usize]
                                    * wt[w_base + ky * kw + kx];
                            }
                        }
                    }
                    out_plane[oy * ow + ox] = acc;
                }
            }
        });

    Tensor::from_f32([n, oc, oh, ow], out).map_err(|e| kerr(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t4(shape: [usize; 4], data: Vec<f32>) -> Tensor {
        Tensor::from_f32(shape, data).unwrap()
    }

    #[test]
    fn identity_kernel() {
        // 1x1 kernel of value 1 reproduces the input.
        let x = t4([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let w = t4([1, 1, 1, 1], vec![1.0]);
        let y = conv2d_f32(&x, &w, None, &Conv2dParams::default()).unwrap();
        assert_eq!(y.as_f32().unwrap(), x.as_f32().unwrap());
    }

    #[test]
    fn known_3x3_valid() {
        // 3x3 all-ones kernel over a 3x3 all-ones image = 9.
        let x = t4([1, 1, 3, 3], vec![1.0; 9]);
        let w = t4([1, 1, 3, 3], vec![1.0; 9]);
        let y = conv2d_f32(&x, &w, None, &Conv2dParams::default()).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 1, 1]);
        assert_eq!(y.as_f32().unwrap()[0], 9.0);
    }

    #[test]
    fn same_padding_shape() {
        let x = t4([1, 1, 4, 4], vec![0.0; 16]);
        let w = t4([2, 1, 3, 3], vec![0.0; 18]);
        let y = conv2d_f32(&x, &w, None, &Conv2dParams::same(1)).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2, 4, 4]);
    }

    #[test]
    fn stride_two() {
        let x = t4([1, 1, 4, 4], (0..16).map(|v| v as f32).collect());
        let w = t4([1, 1, 1, 1], vec![1.0]);
        let p = Conv2dParams {
            strides: (2, 2),
            ..Default::default()
        };
        let y = conv2d_f32(&x, &w, None, &p).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_f32().unwrap(), &[0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn bias_added_per_channel() {
        let x = t4([1, 1, 2, 2], vec![1.0; 4]);
        let w = t4([2, 1, 1, 1], vec![1.0, 2.0]);
        let b = Tensor::from_f32([2], vec![10.0, 20.0]).unwrap();
        let y = conv2d_f32(&x, &w, Some(&b), &Conv2dParams::default()).unwrap();
        let v = y.as_f32().unwrap();
        assert!(v[..4].iter().all(|&e| e == 11.0));
        assert!(v[4..].iter().all(|&e| e == 22.0));
    }

    #[test]
    fn depthwise_groups() {
        // groups = C: each channel convolved independently.
        let x = t4([1, 2, 2, 2], vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
        let w = t4([2, 1, 2, 2], vec![1.0; 8]);
        let p = Conv2dParams {
            groups: 2,
            ..Default::default()
        };
        let y = conv2d_f32(&x, &w, None, &p).unwrap();
        assert_eq!(y.as_f32().unwrap(), &[4.0, 8.0]);
    }

    #[test]
    fn dilation() {
        // Dilated 2x2 kernel with d=2 covers a 3x3 receptive field.
        let x = t4([1, 1, 3, 3], (1..=9).map(|v| v as f32).collect());
        let w = t4([1, 1, 2, 2], vec![1.0; 4]);
        let p = Conv2dParams {
            dilation: (2, 2),
            ..Default::default()
        };
        let y = conv2d_f32(&x, &w, None, &p).unwrap();
        // Corners of the 3x3 image: 1 + 3 + 7 + 9 = 20.
        assert_eq!(y.as_f32().unwrap(), &[20.0]);
    }

    #[test]
    fn rejects_bad_groups() {
        let x = t4([1, 3, 2, 2], vec![0.0; 12]);
        let w = t4([4, 1, 1, 1], vec![0.0; 4]);
        let p = Conv2dParams {
            groups: 2,
            ..Default::default()
        };
        assert!(conv2d_f32(&x, &w, None, &p).is_err());
    }

    #[test]
    fn rejects_kernel_larger_than_input() {
        let x = t4([1, 1, 2, 2], vec![0.0; 4]);
        let w = t4([1, 1, 5, 5], vec![0.0; 25]);
        assert!(conv2d_f32(&x, &w, None, &Conv2dParams::default()).is_err());
    }
}
