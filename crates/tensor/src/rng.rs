//! Deterministic seeded tensor generation.
//!
//! The paper uses pretrained weights; inference *latency* (the measured
//! quantity) is weight-independent, so the reproduction substitutes seeded
//! pseudo-random weights that are stable across runs and platforms.

use crate::dtype::DType;
use crate::quant::QuantParams;
use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic tensor generator keyed by a 64-bit seed.
pub struct TensorRng {
    rng: SmallRng,
}

impl TensorRng {
    /// New generator from a seed.
    pub fn new(seed: u64) -> Self {
        TensorRng {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Uniform float tensor in `[lo, hi)`.
    pub fn uniform_f32(&mut self, shape: impl Into<Shape>, lo: f32, hi: f32) -> Tensor {
        let shape = shape.into();
        let n = shape.num_elements();
        let data: Vec<f32> = (0..n).map(|_| self.rng.gen_range(lo..hi)).collect();
        Tensor::from_f32(shape, data).expect("generated length matches shape")
    }

    /// Kaiming-style weight init: uniform in `±sqrt(6/fan_in)`.
    pub fn kaiming_f32(&mut self, shape: impl Into<Shape>, fan_in: usize) -> Tensor {
        let bound = (6.0 / fan_in.max(1) as f32).sqrt();
        self.uniform_f32(shape, -bound, bound)
    }

    /// Quantized tensor with values drawn uniformly over the dtype range.
    pub fn uniform_quantized(
        &mut self,
        shape: impl Into<Shape>,
        dtype: DType,
        qp: QuantParams,
    ) -> Tensor {
        let shape = shape.into();
        let (lo, hi) = dtype.int_range().expect("quantized dtype");
        let n = shape.num_elements();
        let vals: Vec<i32> = (0..n).map(|_| self.rng.gen_range(lo..=hi)).collect();
        Tensor::from_int_values(shape, &vals, dtype, Some(qp)).expect("length matches")
    }

    /// A fresh u64 for deriving child seeds.
    pub fn next_seed(&mut self) -> u64 {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a = TensorRng::new(42).uniform_f32([2, 3], -1.0, 1.0);
        let b = TensorRng::new(42).uniform_f32([2, 3], -1.0, 1.0);
        assert!(a.bit_eq(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let a = TensorRng::new(1).uniform_f32([64], -1.0, 1.0);
        let b = TensorRng::new(2).uniform_f32([64], -1.0, 1.0);
        assert!(!a.bit_eq(&b));
    }

    #[test]
    fn kaiming_bound_respected() {
        let t = TensorRng::new(7).kaiming_f32([32, 16, 3, 3], 16 * 9);
        let bound = (6.0f32 / (16.0 * 9.0)).sqrt();
        assert!(t.as_f32().unwrap().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn quantized_within_range() {
        let qp = QuantParams::new(0.1, 0);
        let t = TensorRng::new(3).uniform_quantized([100], DType::U8, qp);
        assert!(t.iter_int().all(|v| (0..=255).contains(&v)));
        assert_eq!(t.quant(), Some(qp));
    }
}
