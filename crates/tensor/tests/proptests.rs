//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use tvmnp_tensor::kernels::{
    batch_flatten, binary_f32, concat, conv2d_f32, dense_f32, max_pool2d, softmax_f32, transpose,
    unary, BinaryOp, Conv2dParams, Pool2dParams, UnaryOp,
};
use tvmnp_tensor::quant::FixedPointMultiplier;
use tvmnp_tensor::{DType, QuantParams, Shape, Tensor};

fn small_f32() -> impl Strategy<Value = f32> {
    (-1000i32..1000).prop_map(|v| v as f32 / 10.0)
}

proptest! {
    /// Quantize→dequantize error is bounded by half a scale step for values
    /// inside the representable range.
    #[test]
    fn quant_roundtrip_error_bounded(v in -10.0f32..10.0, zp in -20i32..20) {
        let qp = QuantParams::new(0.1, zp);
        // Only check values that stay inside the int8 window for this zp.
        let q = qp.quantize(v, DType::I8);
        if q > i8::MIN as i32 && q < i8::MAX as i32 {
            let back = qp.dequantize(q);
            prop_assert!((back - v).abs() <= 0.05 + 1e-6);
        }
    }

    /// The fixed-point decomposition approximates any positive real
    /// multiplier to within 1e-6 relative error.
    #[test]
    fn fixed_point_decomposition_accurate(m in 1e-6f64..100.0) {
        let fpm = FixedPointMultiplier::from_real(m);
        prop_assert!(((fpm.to_real() - m) / m).abs() < 1e-6);
    }

    /// from_range always makes zero exactly representable (zp in range) and
    /// keeps scale positive.
    #[test]
    fn from_range_valid(lo in -100.0f32..100.0, hi in -100.0f32..100.0) {
        let qp = QuantParams::from_range(lo, hi, DType::U8);
        prop_assert!(qp.scale > 0.0);
        prop_assert!((0..=255).contains(&qp.zero_point));
    }

    /// offset/unravel are inverse bijections over the whole index space.
    #[test]
    fn shape_offset_unravel_bijection(d0 in 1usize..5, d1 in 1usize..5, d2 in 1usize..5) {
        let s = Shape::from([d0, d1, d2]);
        for off in 0..s.num_elements() {
            prop_assert_eq!(s.offset(&s.unravel(off)), off);
        }
    }

    /// Broadcasting is commutative.
    #[test]
    fn broadcast_commutative(a in prop::collection::vec(1usize..4, 0..4),
                             b in prop::collection::vec(1usize..4, 0..4)) {
        let sa = Shape::new(a);
        let sb = Shape::new(b);
        prop_assert_eq!(sa.broadcast(&sb), sb.broadcast(&sa));
    }

    /// Softmax outputs are a probability distribution for any finite input.
    #[test]
    fn softmax_is_distribution(v in prop::collection::vec(small_f32(), 1..16)) {
        let n = v.len();
        let t = Tensor::from_f32([1, n], v).unwrap();
        let s = softmax_f32(&t).unwrap();
        let row = s.as_f32().unwrap();
        prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        let sum: f32 = row.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    /// ReLU is idempotent.
    #[test]
    fn relu_idempotent(v in prop::collection::vec(small_f32(), 1..32)) {
        let n = v.len();
        let t = Tensor::from_f32([n], v).unwrap();
        let once = unary(&t, UnaryOp::Relu).unwrap();
        let twice = unary(&once, UnaryOp::Relu).unwrap();
        prop_assert!(once.bit_eq(&twice));
    }

    /// Transposing twice with the inverse permutation is the identity.
    #[test]
    fn transpose_involution(d0 in 1usize..4, d1 in 1usize..4, d2 in 1usize..4) {
        let n = d0 * d1 * d2;
        let t = Tensor::from_f32([d0, d1, d2], (0..n).map(|i| i as f32).collect()).unwrap();
        let perm = [2usize, 0, 1];
        let mut inv = [0usize; 3];
        for (i, &p) in perm.iter().enumerate() { inv[p] = i; }
        let y = transpose(&transpose(&t, &perm).unwrap(), &inv).unwrap();
        prop_assert!(t.bit_eq(&y));
    }

    /// concat along axis 0 preserves total element count and order of parts.
    #[test]
    fn concat_preserves_parts(a in prop::collection::vec(small_f32(), 1..8),
                              b in prop::collection::vec(small_f32(), 1..8)) {
        let ta = Tensor::from_f32([a.len()], a.clone()).unwrap();
        let tb = Tensor::from_f32([b.len()], b.clone()).unwrap();
        let y = concat(&[&ta, &tb], 0).unwrap();
        let v = y.as_f32().unwrap();
        prop_assert_eq!(&v[..a.len()], &a[..]);
        prop_assert_eq!(&v[a.len()..], &b[..]);
    }

    /// Addition via the broadcasting kernel is commutative.
    #[test]
    fn binary_add_commutative(v in prop::collection::vec(small_f32(), 4),
                              w in prop::collection::vec(small_f32(), 4)) {
        let a = Tensor::from_f32([2, 2], v).unwrap();
        let b = Tensor::from_f32([2, 2], w).unwrap();
        let ab = binary_f32(&a, &b, BinaryOp::Add).unwrap();
        let ba = binary_f32(&b, &a, BinaryOp::Add).unwrap();
        prop_assert!(ab.bit_eq(&ba));
    }

    /// conv2d is linear: conv(x, w1 + w2) == conv(x, w1) + conv(x, w2).
    #[test]
    fn conv_linear_in_weights(seed in 0u64..1000) {
        let mut rng = tvmnp_tensor::rng::TensorRng::new(seed);
        let x = rng.uniform_f32([1, 2, 5, 5], -1.0, 1.0);
        let w1 = rng.uniform_f32([3, 2, 3, 3], -1.0, 1.0);
        let w2 = rng.uniform_f32([3, 2, 3, 3], -1.0, 1.0);
        let wsum = binary_f32(&w1, &w2, BinaryOp::Add).unwrap();
        let p = Conv2dParams::same(1);
        let y_sum = conv2d_f32(&x, &wsum, None, &p).unwrap();
        let y1 = conv2d_f32(&x, &w1, None, &p).unwrap();
        let y2 = conv2d_f32(&x, &w2, None, &p).unwrap();
        let y12 = binary_f32(&y1, &y2, BinaryOp::Add).unwrap();
        prop_assert!(y_sum.approx_eq(&y12, 1e-3));
    }

    /// Max pooling never produces a value absent from the input window set.
    #[test]
    fn max_pool_subset_of_input(seed in 0u64..1000) {
        let mut rng = tvmnp_tensor::rng::TensorRng::new(seed);
        let x = rng.uniform_f32([1, 1, 4, 4], -1.0, 1.0);
        let y = max_pool2d(&x, &Pool2dParams::square(2)).unwrap();
        let xv = x.as_f32().unwrap();
        for v in y.as_f32().unwrap() {
            prop_assert!(xv.contains(v));
        }
    }

    /// dense(x, W) row count equals input rows, and batch_flatten keeps
    /// element count.
    #[test]
    fn dense_and_flatten_shapes(n in 1usize..4, k in 1usize..8, u in 1usize..8) {
        let x = Tensor::zeros_f32([n, k]);
        let w = Tensor::zeros_f32([u, k]);
        let y = dense_f32(&x, &w, None).unwrap();
        prop_assert_eq!(y.shape().dims(), &[n, u]);
        let t = Tensor::zeros_f32([n, k, 2]);
        let f = batch_flatten(&t).unwrap();
        prop_assert_eq!(f.num_elements(), t.num_elements());
    }
}
