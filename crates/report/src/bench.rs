//! Benchmark baselines and regression gating.
//!
//! A [`BenchRecord`] captures one workload's metrics (median/p95/min/max
//! over N runs) in a stable JSON schema: keys sort deterministically and
//! floats round-trip exactly, so re-recording on the same commit produces
//! byte-identical files — the property the `--check-against` gate and the
//! checked-in `BENCH_*.json` baselines rely on.

use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Bump when the JSON layout changes incompatibly.
pub const SCHEMA_VERSION: u64 = 1;

/// Order statistics of one metric over the benchmark runs.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricStats {
    /// Median (nearest-rank) of the samples.
    pub median: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl MetricStats {
    /// Compute stats from raw samples. Panics on an empty slice.
    pub fn from_samples(samples: &[f64]) -> MetricStats {
        assert!(!samples.is_empty(), "metric needs at least one sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| {
            let rank = (p * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        MetricStats {
            median: pct(0.50),
            p95: pct(0.95),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
        }
    }
}

/// One workload's recorded benchmark: named metrics in a stable schema.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Workload name (`fig4`, `fig6`, ...).
    pub name: String,
    /// Number of repetitions each latency metric was sampled over.
    pub runs: usize,
    /// Metrics keyed by dotted name. Keys ending in `.ms` or `.us` are
    /// latency metrics and participate in regression gating.
    pub metrics: BTreeMap<String, MetricStats>,
}

/// An I/O or parse failure, carrying the offending path.
#[derive(Debug)]
pub struct BenchIoError {
    /// The file being read or written.
    pub path: PathBuf,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for BenchIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.message)
    }
}

impl std::error::Error for BenchIoError {}

impl BenchRecord {
    /// Empty record for `name` over `runs` repetitions.
    pub fn new(name: impl Into<String>, runs: usize) -> BenchRecord {
        BenchRecord {
            name: name.into(),
            runs,
            metrics: BTreeMap::new(),
        }
    }

    /// Record a metric from raw samples.
    pub fn insert(&mut self, key: impl Into<String>, samples: &[f64]) {
        self.metrics
            .insert(key.into(), MetricStats::from_samples(samples));
    }

    /// The stable JSON form (sorted keys at every level).
    pub fn to_json(&self) -> Value {
        let mut metrics = serde_json::Map::new();
        for (key, s) in &self.metrics {
            metrics.insert(
                key.clone(),
                json!({
                    "max": s.max,
                    "median": s.median,
                    "min": s.min,
                    "p95": s.p95,
                }),
            );
        }
        json!({
            "metrics": Value::Object(metrics),
            "name": self.name,
            "runs": self.runs as u64,
            "schema_version": SCHEMA_VERSION,
        })
    }

    /// Parse the JSON form back.
    pub fn from_json(v: &Value) -> Result<BenchRecord, String> {
        let version = v
            .get("schema_version")
            .and_then(Value::as_u64)
            .ok_or("missing schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "schema_version {version} unsupported (expected {SCHEMA_VERSION})"
            ));
        }
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("missing name")?
            .to_string();
        let runs = v
            .get("runs")
            .and_then(Value::as_u64)
            .ok_or("missing runs")? as usize;
        let mut metrics = BTreeMap::new();
        let obj = v
            .get("metrics")
            .and_then(Value::as_object)
            .ok_or("missing metrics object")?;
        for (key, m) in obj {
            let field = |f: &str| {
                m.get(f)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("metric '{key}' missing field '{f}'"))
            };
            metrics.insert(
                key.clone(),
                MetricStats {
                    median: field("median")?,
                    p95: field("p95")?,
                    min: field("min")?,
                    max: field("max")?,
                },
            );
        }
        Ok(BenchRecord {
            name,
            runs,
            metrics,
        })
    }

    /// Write the record as JSON (trailing newline). Deterministic: the
    /// same record always produces the same bytes.
    pub fn write(&self, path: &Path) -> Result<(), BenchIoError> {
        let body = format!("{}\n", self.to_json());
        std::fs::write(path, body).map_err(|e| BenchIoError {
            path: path.to_path_buf(),
            message: format!("failed to write bench record: {e}"),
        })
    }

    /// Read a record written by [`BenchRecord::write`].
    pub fn read(path: &Path) -> Result<BenchRecord, BenchIoError> {
        let text = std::fs::read_to_string(path).map_err(|e| BenchIoError {
            path: path.to_path_buf(),
            message: format!("failed to read bench baseline: {e}"),
        })?;
        let value = serde_json::parse_value(&text).map_err(|e| BenchIoError {
            path: path.to_path_buf(),
            message: format!("invalid JSON: {e}"),
        })?;
        BenchRecord::from_json(&value).map_err(|m| BenchIoError {
            path: path.to_path_buf(),
            message: m,
        })
    }
}

/// Whether `key` names a latency metric that participates in regression
/// gating (lower is better). Aggregate context metrics (counts,
/// utilization fractions) are recorded but never gate.
pub fn gated(key: &str) -> bool {
    key.ends_with(".ms") || key.ends_with(".us")
}

/// Direction of a gated-metric change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeKind {
    /// Median grew beyond the threshold.
    Regression,
    /// Median shrank beyond the threshold (baseline is stale-fast).
    Improvement,
}

/// One gated metric whose median moved beyond the noise threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricChange {
    /// Metric key.
    pub key: String,
    /// Baseline median.
    pub baseline: f64,
    /// Current median.
    pub current: f64,
    /// `current / baseline`.
    pub ratio: f64,
    /// Which way it moved.
    pub kind: ChangeKind,
}

/// Outcome of comparing a current record against a baseline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Comparison {
    /// Gated metrics slower than `baseline * (1 + threshold)`.
    pub regressions: Vec<MetricChange>,
    /// Gated metrics faster than `baseline * (1 - threshold)`.
    pub improvements: Vec<MetricChange>,
    /// Gated baseline metrics absent from the current record.
    pub missing_in_current: Vec<String>,
    /// Gated current metrics absent from the baseline.
    pub new_in_current: Vec<String>,
    /// Gated metrics compared.
    pub compared: usize,
}

impl Comparison {
    /// True when nothing regressed and no gated metric disappeared.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty() && self.missing_in_current.is_empty()
    }

    /// Number of gated baseline metrics the current run never produced —
    /// the signal `bench --fail-on-missing` hard-fails on, since a
    /// silently dropped workload would otherwise pass the gate.
    pub fn missing(&self) -> usize {
        self.missing_in_current.len()
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.regressions {
            out.push_str(&format!(
                "REGRESSION {}: {:.3} -> {:.3} ({:+.1}%)\n",
                c.key,
                c.baseline,
                c.current,
                (c.ratio - 1.0) * 100.0
            ));
        }
        for c in &self.improvements {
            out.push_str(&format!(
                "improvement {}: {:.3} -> {:.3} ({:+.1}%)\n",
                c.key,
                c.baseline,
                c.current,
                (c.ratio - 1.0) * 100.0
            ));
        }
        for k in &self.missing_in_current {
            out.push_str(&format!("MISSING {k}: in baseline but not re-measured\n"));
        }
        for k in &self.new_in_current {
            out.push_str(&format!("new metric {k}: not in baseline\n"));
        }
        out.push_str(&format!(
            "{} gated metrics compared: {} regressed, {} improved\n",
            self.compared,
            self.regressions.len(),
            self.improvements.len()
        ));
        out
    }
}

/// Compare `current` against `baseline` on the gated (latency) metrics.
/// A metric regresses when its median exceeds the baseline median by more
/// than `threshold` (e.g. `0.05` = 5% noise allowance).
pub fn compare(baseline: &BenchRecord, current: &BenchRecord, threshold: f64) -> Comparison {
    let mut cmp = Comparison::default();
    for (key, base) in baseline.metrics.iter().filter(|(k, _)| gated(k)) {
        let Some(cur) = current.metrics.get(key) else {
            cmp.missing_in_current.push(key.clone());
            continue;
        };
        cmp.compared += 1;
        if base.median.abs() < 1e-12 {
            continue; // zero baseline: ratio undefined, skip gating
        }
        let ratio = cur.median / base.median;
        let change = |kind| MetricChange {
            key: key.clone(),
            baseline: base.median,
            current: cur.median,
            ratio,
            kind,
        };
        if ratio > 1.0 + threshold {
            cmp.regressions.push(change(ChangeKind::Regression));
        } else if ratio < 1.0 - threshold {
            cmp.improvements.push(change(ChangeKind::Improvement));
        }
    }
    for key in current.metrics.keys().filter(|k| gated(k)) {
        if !baseline.metrics.contains_key(key) {
            cmp.new_in_current.push(key.clone());
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(pairs: &[(&str, f64)]) -> BenchRecord {
        let mut r = BenchRecord::new("t", 3);
        for (k, v) in pairs {
            r.insert(*k, &[*v]);
        }
        r
    }

    #[test]
    fn stats_order_statistics() {
        let s = MetricStats::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p95, 5.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        let one = MetricStats::from_samples(&[7.5]);
        assert_eq!(one.median, 7.5);
        assert_eq!(one.p95, 7.5);
    }

    #[test]
    fn json_roundtrip_is_byte_identical() {
        let mut r = BenchRecord::new("fig6", 5);
        r.insert("fig6.mobilenet_v2.tvm.ms", &[12.5, 12.5, 13.0]);
        r.insert("fig6.subgraphs", &[3.0]);
        let first = format!("{}\n", r.to_json());
        let second = format!("{}\n", r.to_json());
        assert_eq!(first, second);
        let parsed = BenchRecord::from_json(&serde_json::parse_value(first.trim()).unwrap());
        assert_eq!(parsed.unwrap(), r);
        // Keys appear in sorted order in the serialized form.
        let a = first.find("fig6.mobilenet_v2.tvm.ms").unwrap();
        let b = first.find("fig6.subgraphs").unwrap();
        assert!(a < b);
    }

    #[test]
    fn write_read_roundtrip_and_error_paths_carry_the_path() {
        let dir = std::env::temp_dir().join("tvmnp_report_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_t.json");
        let r = record(&[("t.x.ms", 10.0)]);
        r.write(&path).unwrap();
        assert_eq!(BenchRecord::read(&path).unwrap(), r);
        // Same record, written twice: identical bytes.
        let bytes1 = std::fs::read(&path).unwrap();
        r.write(&path).unwrap();
        assert_eq!(bytes1, std::fs::read(&path).unwrap());

        let missing = dir.join("does_not_exist.json");
        let err = BenchRecord::read(&missing).unwrap_err();
        assert!(err.to_string().contains("does_not_exist.json"));

        let bad_dir = dir.join("no_such_subdir").join("x.json");
        let err = r.write(&bad_dir).unwrap_err();
        assert!(err.to_string().contains("no_such_subdir"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn only_latency_suffixes_gate() {
        assert!(gated("fig6.mobilenet_v2.tvm.ms"));
        assert!(gated("sched.pipeline.makespan.us"));
        assert!(!gated("fig6.subgraphs"));
        assert!(!gated("fig5.cpu.utilization"));
    }

    #[test]
    fn regression_detected_beyond_threshold() {
        let base = record(&[("t.a.ms", 10.0), ("t.count", 3.0)]);
        let slow = record(&[("t.a.ms", 20.0), ("t.count", 99.0)]);
        let cmp = compare(&base, &slow, 0.05);
        assert!(!cmp.ok());
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].key, "t.a.ms");
        assert!((cmp.regressions[0].ratio - 2.0).abs() < 1e-9);
        assert!(cmp.render().contains("REGRESSION t.a.ms"));
        // Non-gated metric movement is ignored.
        assert_eq!(cmp.compared, 1);
    }

    #[test]
    fn noise_within_threshold_passes() {
        let base = record(&[("t.a.ms", 10.0)]);
        let near = record(&[("t.a.ms", 10.4)]);
        assert!(compare(&base, &near, 0.05).ok());
        let faster = record(&[("t.a.ms", 5.0)]);
        let cmp = compare(&base, &faster, 0.05);
        assert!(cmp.ok());
        assert_eq!(cmp.improvements.len(), 1);
    }

    #[test]
    fn missing_gated_metric_fails_new_metric_does_not() {
        let base = record(&[("t.a.ms", 10.0), ("t.b.ms", 5.0)]);
        let cur = record(&[("t.a.ms", 10.0), ("t.c.ms", 1.0)]);
        let cmp = compare(&base, &cur, 0.05);
        assert!(!cmp.ok());
        assert_eq!(cmp.missing(), 1);
        assert_eq!(cmp.missing_in_current, vec!["t.b.ms".to_string()]);
        assert_eq!(cmp.new_in_current, vec!["t.c.ms".to_string()]);
    }
}
