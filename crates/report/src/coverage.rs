//! Partition coverage: which ops the BYOC flow offloaded to Neuron IR and
//! which stayed on the TVM fallback, per op kind.
//!
//! The paper's Fig. 4 analysis hinges on this split — NeuroPilot's op
//! support is narrower than TVM's, so `batch_norm`-style ops pin host
//! subgraphs around the offloaded regions. This module walks a
//! *partitioned* Relay [`Module`] (main + `nir_*` external functions) and
//! counts call sites on each side.

use std::collections::BTreeMap;
use tvmnp_relay::expr::{CallTarget, ExprKind, Module};
use tvmnp_relay::visit::post_order;

/// Offloaded/host call-site counts for one op kind.
#[derive(Debug, Clone, PartialEq)]
pub struct OpCoverage {
    /// Relay op name (`nn.conv2d`, `nn.batch_norm`, ...).
    pub op: String,
    /// Call sites inside external (`nir_*`) subgraphs.
    pub offloaded: usize,
    /// Call sites left in the host (TVM fallback) function.
    pub host: usize,
}

/// Coverage stats of one partitioned module.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Number of external subgraphs.
    pub num_subgraphs: usize,
    /// Total op call sites offloaded to Neuron IR.
    pub offloaded_calls: usize,
    /// Total op call sites on the TVM fallback path.
    pub host_calls: usize,
    /// Per-op-kind split, sorted by op name.
    pub per_op: Vec<OpCoverage>,
}

impl CoverageReport {
    /// Fraction of op call sites offloaded, in `[0, 1]`.
    pub fn offload_fraction(&self) -> f64 {
        let total = self.offloaded_calls + self.host_calls;
        if total == 0 {
            0.0
        } else {
            self.offloaded_calls as f64 / total as f64
        }
    }

    /// The entry for `op`, if it appears in the module.
    pub fn op(&self, op: &str) -> Option<&OpCoverage> {
        self.per_op.iter().find(|c| c.op == op)
    }

    /// Render as an aligned text table.
    pub fn render_text(&self) -> String {
        let mut out = format!("{:<24} {:>10} {:>6}\n", "op", "offloaded", "host");
        for c in &self.per_op {
            out.push_str(&format!("{:<24} {:>10} {:>6}\n", c.op, c.offloaded, c.host));
        }
        out.push_str(&format!(
            "{} subgraphs, {}/{} calls offloaded ({:.1}%)\n",
            self.num_subgraphs,
            self.offloaded_calls,
            self.offloaded_calls + self.host_calls,
            self.offload_fraction() * 100.0
        ));
        out
    }
}

/// Count op call sites in one function body into `acc`.
fn count_ops(body: &tvmnp_relay::expr::Expr, acc: &mut BTreeMap<String, usize>) {
    post_order(body, |e| {
        if let ExprKind::Call(call) = &e.kind {
            if let CallTarget::Op(op) = &call.target {
                *acc.entry(op.name().to_string()).or_default() += 1;
            }
        }
    });
}

/// Coverage of a partitioned module: op calls inside external functions
/// count as offloaded; op calls in the remaining host functions (`main`
/// and any non-external helper) count as host. Calls *to* the external
/// subgraphs themselves are structural and not counted either way.
pub fn coverage(partitioned: &Module) -> CoverageReport {
    let external: Vec<&str> = partitioned.external_functions();
    let mut offloaded: BTreeMap<String, usize> = BTreeMap::new();
    let mut host: BTreeMap<String, usize> = BTreeMap::new();
    for (name, func) in &partitioned.functions {
        let acc = if external.contains(&name.as_str()) {
            &mut offloaded
        } else {
            &mut host
        };
        count_ops(&func.body, acc);
    }
    let mut ops: Vec<String> = offloaded.keys().chain(host.keys()).cloned().collect();
    ops.sort();
    ops.dedup();
    let per_op: Vec<OpCoverage> = ops
        .into_iter()
        .map(|op| OpCoverage {
            offloaded: offloaded.get(&op).copied().unwrap_or(0),
            host: host.get(&op).copied().unwrap_or(0),
            op,
        })
        .collect();
    CoverageReport {
        num_subgraphs: external.len(),
        offloaded_calls: per_op.iter().map(|c| c.offloaded).sum(),
        host_calls: per_op.iter().map(|c| c.host).sum(),
        per_op,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvmnp_relay::builder;
    use tvmnp_relay::expr::{var, Function};
    use tvmnp_relay::passes::{fold_constants, partition_graph, simplify};
    use tvmnp_relay::{Conv2dAttrs, TensorType};
    use tvmnp_tensor::rng::TensorRng;

    /// conv → relu → batch_norm (NP-unsupported) → conv → softmax: the
    /// batch_norm splits the graph into two offloaded regions.
    fn mixed_module() -> Module {
        let mut rng = TensorRng::new(11);
        let x = var("x", TensorType::f32([1, 4, 8, 8]));
        let w1 = rng.uniform_f32([4, 4, 3, 3], -0.4, 0.4);
        let c1 = builder::relu(builder::conv2d(x.clone(), w1, Conv2dAttrs::same(1)));
        let bn = builder::batch_norm(
            c1,
            rng.uniform_f32([4], 0.9, 1.1),
            rng.uniform_f32([4], -0.1, 0.1),
            rng.uniform_f32([4], -0.1, 0.1),
            rng.uniform_f32([4], 0.9, 1.1),
            1e-5,
        );
        let w2 = rng.uniform_f32([4, 4, 3, 3], -0.4, 0.4);
        let c2 = builder::conv2d(bn, w2, Conv2dAttrs::same(1));
        let y = builder::softmax(builder::batch_flatten(c2));
        Module::from_main(Function::new(vec![x], y))
    }

    // The report crate deliberately does not depend on tvmnp-neuropilot;
    // its tests re-declare the support oracle through the passes API.
    struct AllButBatchNorm;
    impl tvmnp_relay::passes::CompilerSupport for AllButBatchNorm {
        fn name(&self) -> &str {
            "neuropilot"
        }
        fn supported(
            &self,
            op: &tvmnp_relay::op::OpKind,
            _arg_types: &[&tvmnp_relay::ty::Type],
        ) -> bool {
            op.name() != "nn.batch_norm"
        }
    }

    #[test]
    fn partitioned_module_splits_supported_from_unsupported() {
        let m = mixed_module();
        let prepared = fold_constants(&simplify(&m));
        let (partitioned, report) = partition_graph(&prepared, &AllButBatchNorm).unwrap();
        let cov = coverage(&partitioned);
        assert_eq!(cov.num_subgraphs, report.num_subgraphs);
        assert!(cov.num_subgraphs >= 2, "batch_norm must split the graph");
        // batch_norm is the unsupported op: all its calls stay on host.
        let bn = cov.op("nn.batch_norm").unwrap();
        assert_eq!(bn.offloaded, 0);
        assert!(bn.host >= 1);
        // Both convs offload.
        let conv = cov.op("nn.conv2d").unwrap();
        assert_eq!(conv.offloaded, 2);
        assert_eq!(conv.host, 0);
        assert!(cov.offload_fraction() > 0.5);
        assert_eq!(cov.offloaded_calls, report.offloaded_calls);
        assert_eq!(cov.host_calls, report.host_calls);
    }

    #[test]
    fn unpartitioned_module_is_all_host() {
        let cov = coverage(&mixed_module());
        assert_eq!(cov.num_subgraphs, 0);
        assert_eq!(cov.offloaded_calls, 0);
        assert!(cov.host_calls > 0);
        assert_eq!(cov.offload_fraction(), 0.0);
    }
}
