//! Idle-gap and critical-path analysis for pipeline schedules (Fig. 5).
//!
//! The scheduler already records every `(stage, frame)` interval as a
//! [`StageRun`]; this module reconstructs *why* the makespan is what it
//! is: which chain of runs is tight (the critical path) and where each
//! device sits idle (the gaps pipelining should be filling).

use crate::util::{devices_used, utilization_from_timeline, UtilizationReport};
use tvmnp_scheduler::{ScheduleResult, StageRun};

const EPS: f64 = 1e-6;

/// Idle gaps of one device within the schedule's makespan.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceGaps {
    /// Device name.
    pub device: String,
    /// `(start, end)` idle intervals, in time order.
    pub gaps: Vec<(f64, f64)>,
    /// Summed gap time, microseconds.
    pub total_us: f64,
    /// Largest single gap, microseconds.
    pub largest_us: f64,
}

/// Why a critical-path step could not start earlier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitReason {
    /// First step: starts at t = 0.
    Start,
    /// Waited on the previous stage of the same frame (data dependency).
    Dependency,
    /// Waited on the previous frame: its own previous-frame run
    /// (single-instance stage) or the sequential frame barrier.
    PrevFrame,
    /// Waited for a device held by an unrelated run (resource conflict).
    Resource,
}

impl WaitReason {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            WaitReason::Start => "start",
            WaitReason::Dependency => "dep",
            WaitReason::PrevFrame => "prev-frame",
            WaitReason::Resource => "resource",
        }
    }
}

/// One step on the critical path, in time order.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// Stage name.
    pub name: String,
    /// Frame number.
    pub frame: usize,
    /// Start time, microseconds.
    pub start_us: f64,
    /// End time, microseconds.
    pub end_us: f64,
    /// What this step was waiting on.
    pub reason: WaitReason,
}

/// Full analysis of one schedule simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleReport {
    /// Schedule makespan, microseconds.
    pub makespan_us: f64,
    /// Frames scheduled.
    pub frames: usize,
    /// Average per-frame period, microseconds.
    pub period_us: f64,
    /// Busy/idle/overlap accounting per device.
    pub utilization: UtilizationReport,
    /// Idle gaps per device actually used by the schedule.
    pub gaps: Vec<DeviceGaps>,
    /// Back-to-back chain of runs ending at the makespan.
    pub critical_path: Vec<PathStep>,
    /// Summed duration of the critical-path steps, microseconds. Equals
    /// the makespan when the path is gap-free (greedy schedules are).
    pub critical_path_us: f64,
}

impl ScheduleReport {
    /// Render as human-readable text.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "makespan {:.1} us over {} frames (period {:.1} us)\n\n",
            self.makespan_us, self.frames, self.period_us
        );
        out.push_str(&self.utilization.render_text());
        out.push_str("\nidle gaps:\n");
        for g in &self.gaps {
            out.push_str(&format!(
                "  {:<6} {} gaps, total {:.1} us, largest {:.1} us\n",
                g.device,
                g.gaps.len(),
                g.total_us,
                g.largest_us
            ));
        }
        out.push_str(&format!(
            "\ncritical path ({:.1} us / {:.1} us makespan):\n",
            self.critical_path_us, self.makespan_us
        ));
        for s in &self.critical_path {
            out.push_str(&format!(
                "  [{:>10.1} - {:>10.1}] {} f{} ({})\n",
                s.start_us,
                s.end_us,
                s.name,
                s.frame,
                s.reason.label()
            ));
        }
        out
    }
}

/// Find the run that made `run` start when it did, with the reason.
/// Returns `None` when the run starts unblocked at t = 0.
fn blocker<'a>(runs: &'a [StageRun], run: &StageRun) -> Option<(&'a StageRun, WaitReason)> {
    let ends_at_start = |q: &StageRun| (q.end_us - run.start_us).abs() < EPS;
    // Data dependency: previous stage of the same frame.
    if run.stage_index > 0 {
        if let Some(q) = runs.iter().find(|q| {
            q.frame == run.frame && q.stage_index == run.stage_index - 1 && ends_at_start(q)
        }) {
            return Some((q, WaitReason::Dependency));
        }
    }
    // Single-instance stage: its own run for the previous frame.
    if run.frame > 0 {
        if let Some(q) = runs.iter().find(|q| {
            q.frame == run.frame - 1 && q.stage_index == run.stage_index && ends_at_start(q)
        }) {
            return Some((q, WaitReason::PrevFrame));
        }
    }
    // Resource conflict: any other run holding one of our devices until
    // exactly our start.
    if let Some(q) = runs.iter().find(|q| {
        !(q.frame == run.frame && q.stage_index == run.stage_index)
            && ends_at_start(q)
            && q.resources.iter().any(|d| run.resources.contains(d))
    }) {
        return Some((q, WaitReason::Resource));
    }
    // Sequential frame barrier: the driver holds frame f until every
    // stage of frame f-1 finished, even across disjoint devices.
    if run.frame > 0 {
        if let Some(q) = runs
            .iter()
            .find(|q| q.frame == run.frame - 1 && ends_at_start(q))
        {
            return Some((q, WaitReason::PrevFrame));
        }
    }
    None
}

/// Reconstruct the critical path: start from the run that finishes last
/// and follow blockers backwards until a run starts at t = 0.
pub fn critical_path(runs: &[StageRun]) -> Vec<PathStep> {
    let Some(mut cur) = runs.iter().max_by(|a, b| {
        a.end_us
            .partial_cmp(&b.end_us)
            .unwrap()
            // Ties: prefer the earlier run in schedule order (stable).
            .then_with(|| (b.frame, b.stage_index).cmp(&(a.frame, a.stage_index)))
    }) else {
        return Vec::new();
    };
    let mut path = Vec::new();
    // The blocker chain strictly walks backwards for positive-duration
    // runs; the length cap guards against degenerate zero-duration cycles.
    for _ in 0..=runs.len() {
        match blocker(runs, cur) {
            Some((prev, r)) => {
                path.push(step(cur, r));
                cur = prev;
            }
            None => {
                path.push(step(cur, WaitReason::Start));
                break;
            }
        }
    }
    path.reverse();
    path
}

fn step(run: &StageRun, reason: WaitReason) -> PathStep {
    PathStep {
        name: run.name.clone(),
        frame: run.frame,
        start_us: run.start_us,
        end_us: run.end_us,
        reason,
    }
}

/// Analyze one schedule simulation end to end.
pub fn analyze_schedule(result: &ScheduleResult) -> ScheduleReport {
    let utilization = utilization_from_timeline(&result.timeline);
    let gaps = devices_used(&result.timeline)
        .into_iter()
        .map(|d| {
            let gaps = result.timeline.gaps(d);
            let total_us = gaps.iter().map(|(s, e)| e - s).sum();
            let largest_us = gaps.iter().map(|(s, e)| e - s).fold(0.0, f64::max);
            DeviceGaps {
                device: d.name().to_string(),
                gaps,
                total_us,
                largest_us,
            }
        })
        .collect();
    let critical_path = critical_path(&result.stage_runs);
    let critical_path_us = critical_path.iter().map(|s| s.end_us - s.start_us).sum();
    ScheduleReport {
        makespan_us: result.makespan_us,
        frames: result.frames,
        period_us: result.period_us(),
        utilization,
        gaps,
        critical_path,
        critical_path_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvmnp_scheduler::pipeline::paper_prototype_stages;
    use tvmnp_scheduler::{simulate_pipelined, simulate_sequential};

    fn stages() -> Vec<tvmnp_scheduler::PipelineStage> {
        paper_prototype_stages(3000.0, 6000.0, 2000.0)
    }

    #[test]
    fn critical_path_spans_zero_to_makespan_and_is_contiguous() {
        for result in [
            simulate_sequential(&stages(), 4),
            simulate_pipelined(&stages(), 4),
        ] {
            let report = analyze_schedule(&result);
            let path = &report.critical_path;
            assert!(!path.is_empty());
            assert!(path[0].start_us.abs() < EPS, "path starts at t=0");
            assert_eq!(path[0].reason, WaitReason::Start);
            assert!(
                (path.last().unwrap().end_us - result.makespan_us).abs() < EPS,
                "path ends at the makespan"
            );
            for w in path.windows(2) {
                assert!(
                    (w[0].end_us - w[1].start_us).abs() < EPS,
                    "steps chain back-to-back"
                );
                assert_ne!(w[1].reason, WaitReason::Start);
            }
            // A contiguous path's durations sum to the makespan.
            assert!((report.critical_path_us - result.makespan_us).abs() < EPS);
        }
    }

    #[test]
    fn sequential_path_is_pure_dependency_chain() {
        let result = simulate_sequential(&stages(), 3);
        let report = analyze_schedule(&result);
        // 3 stages x 3 frames, every step waiting on the previous.
        assert_eq!(report.critical_path.len(), 9);
        assert!(report
            .critical_path
            .iter()
            .skip(1)
            .all(|s| s.reason != WaitReason::Start));
    }

    #[test]
    fn pipelined_path_blames_the_bottleneck_stage() {
        let result = simulate_pipelined(&stages(), 8);
        let report = analyze_schedule(&result);
        // anti-spoof (6000 us on CPU+APU) dominates; the steady-state path
        // runs through it every frame.
        let spoof_steps = report
            .critical_path
            .iter()
            .filter(|s| s.name == "anti-spoof")
            .count();
        assert!(
            spoof_steps >= 7,
            "bottleneck stage on path {spoof_steps}/8 frames"
        );
    }

    #[test]
    fn gaps_cover_only_used_devices() {
        let result = simulate_pipelined(&stages(), 4);
        let report = analyze_schedule(&result);
        let devices: Vec<&str> = report.gaps.iter().map(|g| g.device.as_str()).collect();
        assert_eq!(devices, vec!["cpu", "apu"], "gpu is unused and excluded");
        for g in &report.gaps {
            let sum: f64 = g.gaps.iter().map(|(s, e)| e - s).sum();
            assert!((sum - g.total_us).abs() < 1e-9);
            assert!(g.largest_us <= g.total_us + 1e-9);
        }
    }

    #[test]
    fn pipelining_shrinks_makespan_and_gaps() {
        let seq = analyze_schedule(&simulate_sequential(&stages(), 8));
        let pipe = analyze_schedule(&simulate_pipelined(&stages(), 8));
        assert!(pipe.makespan_us < seq.makespan_us);
        let idle = |r: &ScheduleReport| -> f64 { r.gaps.iter().map(|g| g.total_us).sum() };
        assert!(idle(&pipe) < idle(&seq), "pipelining fills idle gaps");
        assert!(pipe.utilization.overlap_us > 0.0, "stages overlap");
        let text = pipe.render_text();
        assert!(text.contains("critical path"));
        assert!(text.contains("anti-spoof"));
    }
}
