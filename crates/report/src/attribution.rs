//! Top-K op cost attribution: where the simulated microseconds go.
//!
//! Two sources, one shape: `executor.node` sim spans from a traced run, or
//! the analytic [`NodeCost`] breakdown of a compiled model (no execution
//! needed). Grouping is by `(op, device)` so `conv2d@apu` and
//! `conv2d@cpu` rank separately — exactly the split the paper's Figs. 4/6
//! argue about.

use std::collections::BTreeMap;
use tvmnp_runtime::NodeCost;
use tvmnp_telemetry::Snapshot;

/// Aggregate cost of one `(op, device)` group.
#[derive(Debug, Clone, PartialEq)]
pub struct OpCost {
    /// Op or kernel name (`nn.conv2d`, `nir_0`, `transfer`, ...).
    pub op: String,
    /// Device the group ran on.
    pub device: String,
    /// Number of contributing nodes/spans.
    pub calls: u64,
    /// Summed simulated time, microseconds.
    pub total_us: f64,
    /// Fraction of the whole run's time, in `[0, 1]`.
    pub share: f64,
}

fn rank(groups: BTreeMap<(String, String), (u64, f64)>, k: usize) -> Vec<OpCost> {
    let total: f64 = groups.values().map(|(_, us)| us).sum();
    let mut out: Vec<OpCost> = groups
        .into_iter()
        .map(|((op, device), (calls, total_us))| OpCost {
            op,
            device,
            calls,
            total_us,
            share: if total > 0.0 { total_us / total } else { 0.0 },
        })
        .collect();
    // Sort by cost descending; the BTreeMap key (op, device) breaks ties
    // deterministically.
    out.sort_by(|a, b| {
        b.total_us
            .partial_cmp(&a.total_us)
            .unwrap()
            .then_with(|| (&a.op, &a.device).cmp(&(&b.op, &b.device)))
    });
    if k > 0 {
        out.truncate(k);
    }
    out
}

/// Top-`k` cost groups from the `span_name` sim spans of a snapshot
/// (`k = 0` keeps every group). Spans are grouped by their `op` and
/// `device` attributes.
pub fn attribute_spans(snap: &Snapshot, span_name: &str, k: usize) -> Vec<OpCost> {
    let mut groups: BTreeMap<(String, String), (u64, f64)> = BTreeMap::new();
    for e in snap.spans_named(span_name) {
        let get = |key: &str| {
            e.args
                .iter()
                .find(|(a, _)| a == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| "?".to_string())
        };
        let entry = groups.entry((get("op"), get("device"))).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += e.dur_us;
    }
    rank(groups, k)
}

/// Top-`k` cost groups from an analytic per-node breakdown (`k = 0`
/// keeps every group).
pub fn attribute_breakdown(costs: &[NodeCost], k: usize) -> Vec<OpCost> {
    let mut groups: BTreeMap<(String, String), (u64, f64)> = BTreeMap::new();
    for c in costs {
        let entry = groups
            .entry((c.op.clone(), c.device.clone()))
            .or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += c.us;
    }
    rank(groups, k)
}

/// Render attribution rows as an aligned text table.
pub fn render_text(rows: &[OpCost]) -> String {
    let mut out = format!(
        "{:<24} {:<8} {:>7} {:>12} {:>7}\n",
        "op", "device", "calls", "total us", "%"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<24} {:<8} {:>7} {:>12.1} {:>7.1}\n",
            r.op,
            r.device,
            r.calls,
            r.total_us,
            r.share * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(op: &str, device: &str, us: f64) -> NodeCost {
        NodeCost {
            index: 0,
            op: op.into(),
            device: device.into(),
            us,
            external: false,
        }
    }

    #[test]
    fn breakdown_groups_rank_by_cost() {
        let rows = attribute_breakdown(
            &[
                cost("nn.conv2d", "apu", 50.0),
                cost("nn.conv2d", "apu", 30.0),
                cost("nn.relu", "cpu", 5.0),
                cost("nn.conv2d", "cpu", 60.0),
            ],
            0,
        );
        assert_eq!(rows.len(), 3);
        assert_eq!(
            (rows[0].op.as_str(), rows[0].device.as_str()),
            ("nn.conv2d", "apu")
        );
        assert_eq!(rows[0].calls, 2);
        assert!((rows[0].total_us - 80.0).abs() < 1e-9);
        assert!((rows[0].share - 80.0 / 145.0).abs() < 1e-9);
        assert_eq!(rows[1].device, "cpu");
        let share_sum: f64 = rows.iter().map(|r| r.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top_k_truncates_after_ranking() {
        let rows = attribute_breakdown(
            &[
                cost("a", "cpu", 1.0),
                cost("b", "cpu", 3.0),
                cost("c", "cpu", 2.0),
            ],
            2,
        );
        let names: Vec<&str> = rows.iter().map(|r| r.op.as_str()).collect();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn equal_costs_tie_break_deterministically() {
        let rows = attribute_breakdown(
            &[
                cost("b", "cpu", 2.0),
                cost("a", "cpu", 2.0),
                cost("a", "apu", 2.0),
            ],
            0,
        );
        let keys: Vec<(&str, &str)> = rows
            .iter()
            .map(|r| (r.op.as_str(), r.device.as_str()))
            .collect();
        assert_eq!(keys, vec![("a", "apu"), ("a", "cpu"), ("b", "cpu")]);
    }

    #[test]
    fn span_attribution_reads_op_and_device_args() {
        let _l = crate::testutil::lock();
        tvmnp_telemetry::enable();
        tvmnp_telemetry::reset();
        for (op, device, ts, us) in [
            ("nn.conv2d", "apu", 0.0, 40.0),
            ("nn.relu", "cpu", 40.0, 10.0),
            ("nn.conv2d", "apu", 50.0, 20.0),
        ] {
            tvmnp_telemetry::record_sim_span(
                "executor.node",
                ts,
                us,
                vec![("op".into(), op.into()), ("device".into(), device.into())],
            );
        }
        tvmnp_telemetry::disable();
        let rows = attribute_spans(&tvmnp_telemetry::snapshot(), "executor.node", 1);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].op, "nn.conv2d");
        assert_eq!(rows[0].calls, 2);
        assert!((rows[0].total_us - 60.0).abs() < 1e-9);
    }
}
