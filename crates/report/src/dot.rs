//! Annotated Graphviz DOT dump of a partitioned graph with per-node
//! timing heat.
//!
//! The executor graph *is* the partitioned Relay graph after lowering —
//! host ops plus `nir_*` external calls — so the dump shows exactly what
//! the BYOC flow produced, with each node shaded by its share of the
//! analytic cost (white = free, deep red = the bottleneck).

use std::collections::HashMap;
use tvmnp_runtime::{ExecutorGraph, NodeCost, NodeKind};

/// Escape a string for a double-quoted DOT label.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Heat fill for a cost share in `[0, 1]`: a 9-step white→red ramp
/// (Graphviz `reds9` color scheme).
fn heat(share_of_max: f64) -> String {
    let level = (share_of_max * 9.0).ceil().clamp(1.0, 9.0) as u32;
    format!("/reds9/{level}")
}

/// Render `graph` as DOT, annotating each node with its analytic cost
/// from `costs` (match by node index; pass the model's
/// `estimate_breakdown()`). Output is deterministic: nodes emit in index
/// order, edges in input order.
pub fn dot_graph(graph: &ExecutorGraph, costs: &[NodeCost], title: &str) -> String {
    let by_index: HashMap<usize, &NodeCost> = costs.iter().map(|c| (c.index, c)).collect();
    let total_us: f64 = costs.iter().map(|c| c.us).sum();
    let max_us = costs.iter().map(|c| c.us).fold(0.0, f64::max);
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", esc(title)));
    out.push_str("  rankdir=TB;\n");
    out.push_str(&format!(
        "  label=\"{} — total {:.1} us (simulated)\";\n",
        esc(title),
        total_us
    ));
    out.push_str("  node [fontname=\"Helvetica\", style=filled, fillcolor=white];\n");
    for (idx, node) in graph.nodes.iter().enumerate() {
        let cost = by_index.get(&idx);
        let annotate = |name: &str| match cost {
            Some(c) if total_us > 0.0 => format!(
                "{}\\n{:.1} us ({:.1}%)",
                esc(name),
                c.us,
                c.us / total_us * 100.0
            ),
            _ => esc(name),
        };
        let fill = match cost {
            Some(c) if max_us > 0.0 && c.us > 0.0 => heat(c.us / max_us),
            _ => "white".to_string(),
        };
        match &node.kind {
            // Params are weights; they would swamp the drawing.
            NodeKind::Param { .. } => continue,
            NodeKind::Input { name } => {
                out.push_str(&format!(
                    "  n{idx} [shape=ellipse, style=dashed, label=\"{}\"];\n",
                    esc(name)
                ));
            }
            NodeKind::Op { op, .. } => {
                out.push_str(&format!(
                    "  n{idx} [shape=box, fillcolor=\"{fill}\", label=\"{}\"];\n",
                    annotate(op.name())
                ));
            }
            NodeKind::External { symbol, .. } => {
                out.push_str(&format!(
                    "  n{idx} [shape=box3d, fillcolor=\"{fill}\", label=\"{}\"];\n",
                    annotate(symbol)
                ));
            }
        }
    }
    for (idx, node) in graph.nodes.iter().enumerate() {
        let inputs = match &node.kind {
            NodeKind::Op { inputs, .. } | NodeKind::External { inputs, .. } => inputs,
            _ => continue,
        };
        for r in inputs {
            if matches!(graph.nodes[r.node].kind, NodeKind::Param { .. }) {
                continue;
            }
            out.push_str(&format!("  n{} -> n{idx};\n", r.node));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvmnp_relay::builder;
    use tvmnp_relay::expr::{var, Function, Module};
    use tvmnp_relay::{Conv2dAttrs, TensorType};
    use tvmnp_tensor::rng::TensorRng;

    fn graph() -> ExecutorGraph {
        let mut rng = TensorRng::new(5);
        let x = var("x", TensorType::f32([1, 4, 8, 8]));
        let w = rng.uniform_f32([4, 4, 3, 3], -0.4, 0.4);
        let y = builder::relu(builder::conv2d(x.clone(), w, Conv2dAttrs::same(1)));
        ExecutorGraph::build(&Module::from_main(Function::new(vec![x], y))).unwrap()
    }

    #[test]
    fn dot_is_wellformed_and_annotated() {
        let g = graph();
        // Synthetic costs: find the conv node index.
        let conv_idx = g
            .nodes
            .iter()
            .position(|n| matches!(&n.kind, NodeKind::Op { op, .. } if op.name() == "nn.conv2d"))
            .unwrap();
        let costs = vec![NodeCost {
            index: conv_idx,
            op: "nn.conv2d".into(),
            device: "cpu".into(),
            us: 80.0,
            external: false,
        }];
        let dot = dot_graph(&g, &costs, "toy");
        assert!(dot.starts_with("digraph \"toy\" {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("nn.conv2d\\n80.0 us (100.0%)"));
        assert!(dot.contains("/reds9/9"), "max-cost node gets full heat");
        assert!(dot.contains("shape=ellipse"), "input node rendered");
        assert!(dot.contains(" -> "), "edges rendered");
        assert!(!dot.contains("Param"), "weights are skipped");
        // Deterministic: same inputs, same bytes.
        assert_eq!(dot, dot_graph(&g, &costs, "toy"));
    }

    #[test]
    fn zero_cost_nodes_stay_white() {
        let g = graph();
        let dot = dot_graph(&g, &[], "uncosted");
        assert!(!dot.contains("/reds9/"));
        assert!(dot.contains("fillcolor=white"));
    }
}
