//! Per-device utilization and occupancy on the simulated timeline.
//!
//! Two sources feed the same report shape: telemetry [`Snapshot`]s (sim
//! spans carry a `device` attribute, `cpu+apu` for joint reservations) and
//! hwsim [`Timeline`]s (one [`Segment`] per device per reservation).

use std::collections::BTreeMap;
use tvmnp_hwsim::{DeviceKind, Timeline};
use tvmnp_telemetry::Snapshot;

/// Busy/idle accounting for one device over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceUtil {
    /// Device name (`cpu`, `gpu`, `apu`).
    pub device: String,
    /// Total occupied time, microseconds (overlapping intervals merged).
    pub busy_us: f64,
    /// `span - busy`, microseconds.
    pub idle_us: f64,
    /// Number of merged busy intervals.
    pub intervals: usize,
}

impl DeviceUtil {
    /// Busy fraction of the run span, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let span = self.busy_us + self.idle_us;
        if span <= 0.0 {
            0.0
        } else {
            self.busy_us / span
        }
    }
}

/// Utilization of every device that appears in a run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UtilizationReport {
    /// Run span: latest busy-interval end, microseconds from t = 0.
    pub span_us: f64,
    /// Time during which two or more devices are busy simultaneously —
    /// the overlap that pipelining and CPU+APU co-runs buy.
    pub overlap_us: f64,
    /// Per-device accounting, sorted by device name.
    pub devices: Vec<DeviceUtil>,
}

impl UtilizationReport {
    /// The entry for `device`, if it appeared in the run.
    pub fn device(&self, device: &str) -> Option<&DeviceUtil> {
        self.devices.iter().find(|d| d.device == device)
    }

    /// Sum of busy time across devices (counts co-runs once per device).
    pub fn total_busy_us(&self) -> f64 {
        self.devices.iter().map(|d| d.busy_us).sum()
    }

    /// Render as an aligned text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<8} {:>12} {:>12} {:>8} {:>10}\n",
            "device", "busy us", "idle us", "util %", "intervals"
        ));
        for d in &self.devices {
            out.push_str(&format!(
                "{:<8} {:>12.1} {:>12.1} {:>8.1} {:>10}\n",
                d.device,
                d.busy_us,
                d.idle_us,
                d.utilization() * 100.0,
                d.intervals
            ));
        }
        out.push_str(&format!(
            "span {:.1} us, device overlap {:.1} us\n",
            self.span_us, self.overlap_us
        ));
        out
    }
}

const EPS: f64 = 1e-9;

/// Merge sorted-by-start intervals; touching intervals coalesce.
fn merge(mut intervals: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mut merged: Vec<(f64, f64)> = Vec::new();
    for (s, e) in intervals {
        if e <= s + EPS {
            continue; // zero-width
        }
        match merged.last_mut() {
            Some(last) if s <= last.1 + EPS => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
}

/// Core: build the report from per-device raw busy intervals.
pub fn utilization_from_intervals(
    per_device: BTreeMap<String, Vec<(f64, f64)>>,
) -> UtilizationReport {
    let merged: BTreeMap<String, Vec<(f64, f64)>> = per_device
        .into_iter()
        .map(|(d, iv)| (d, merge(iv)))
        .collect();
    let span_us = merged
        .values()
        .flatten()
        .map(|&(_, e)| e)
        .fold(0.0, f64::max);
    let devices = merged
        .iter()
        .map(|(name, iv)| {
            let busy_us: f64 = iv.iter().map(|(s, e)| e - s).sum();
            DeviceUtil {
                device: name.clone(),
                busy_us,
                idle_us: (span_us - busy_us).max(0.0),
                intervals: iv.len(),
            }
        })
        .collect();
    // Sweep all merged intervals: overlap is the time >= 2 devices busy.
    let mut events: Vec<(f64, i32)> = Vec::new();
    for iv in merged.values() {
        for &(s, e) in iv {
            events.push((s, 1));
            events.push((e, -1));
        }
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(b.1.cmp(&a.1)));
    let mut overlap_us = 0.0;
    let mut active = 0;
    let mut prev = 0.0;
    for (t, d) in events {
        if active >= 2 {
            overlap_us += t - prev;
        }
        active += d;
        prev = t;
    }
    UtilizationReport {
        span_us,
        overlap_us,
        devices,
    }
}

/// Utilization from a telemetry snapshot: every sim-domain span carrying a
/// `device` attribute contributes a busy interval; `cpu+apu`-style joint
/// values occupy each named device.
pub fn utilization_from_snapshot(snap: &Snapshot) -> UtilizationReport {
    let mut per_device: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for e in snap.sim_spans() {
        let Some((_, devices)) = e.args.iter().find(|(k, _)| k == "device") else {
            continue;
        };
        for d in devices.split('+').filter(|d| !d.is_empty()) {
            per_device
                .entry(d.to_string())
                .or_default()
                .push((e.ts_us, e.ts_us + e.dur_us));
        }
    }
    utilization_from_intervals(per_device)
}

/// Utilization straight from an hwsim timeline's Gantt segments.
pub fn utilization_from_timeline(timeline: &Timeline) -> UtilizationReport {
    let mut per_device: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for s in timeline.segments() {
        per_device
            .entry(s.device.name().to_string())
            .or_default()
            .push((s.start_us, s.end_us));
    }
    utilization_from_intervals(per_device)
}

/// The devices a timeline actually used, in [`DeviceKind::ALL`] order.
pub fn devices_used(timeline: &Timeline) -> Vec<DeviceKind> {
    DeviceKind::ALL
        .into_iter()
        .filter(|&d| timeline.segments().iter().any(|s| s.device == d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn intervals(v: &[(&str, &[(f64, f64)])]) -> BTreeMap<String, Vec<(f64, f64)>> {
        v.iter()
            .map(|(d, iv)| (d.to_string(), iv.to_vec()))
            .collect()
    }

    #[test]
    fn busy_plus_idle_equals_span_per_device() {
        let r = utilization_from_intervals(intervals(&[
            ("cpu", &[(0.0, 50.0), (80.0, 100.0)]),
            ("apu", &[(0.0, 200.0)]),
        ]));
        assert!((r.span_us - 200.0).abs() < 1e-9);
        for d in &r.devices {
            assert!(
                (d.busy_us + d.idle_us - r.span_us).abs() < 1e-9,
                "{}",
                d.device
            );
        }
        let cpu = r.device("cpu").unwrap();
        assert!((cpu.busy_us - 70.0).abs() < 1e-9);
        assert_eq!(cpu.intervals, 2);
        assert!((r.device("apu").unwrap().utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlapping_intervals_merge_before_summing() {
        // Per-op spans can nest/touch (e.g. a dispatch span inside a
        // segment span); busy time must not double-count.
        let r = utilization_from_intervals(intervals(&[(
            "cpu",
            &[(0.0, 10.0), (5.0, 20.0), (20.0, 30.0)],
        )]));
        let cpu = r.device("cpu").unwrap();
        assert!((cpu.busy_us - 30.0).abs() < 1e-9);
        assert_eq!(cpu.intervals, 1, "touching intervals coalesce");
    }

    #[test]
    fn overlap_counts_multi_device_time_once() {
        let r = utilization_from_intervals(intervals(&[
            ("cpu", &[(0.0, 100.0)]),
            ("apu", &[(50.0, 150.0)]),
            ("gpu", &[(60.0, 90.0)]),
        ]));
        // [50,100] has >= 2 devices active (gpu's [60,90] lies inside it).
        assert!((r.overlap_us - 50.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_joint_device_spans_split() {
        let _l = crate::testutil::lock();
        tvmnp_telemetry::enable();
        tvmnp_telemetry::reset();
        tvmnp_telemetry::record_sim_span(
            "scheduler.stage",
            0.0,
            40.0,
            vec![("device".into(), "cpu+apu".into())],
        );
        tvmnp_telemetry::record_sim_span(
            "scheduler.stage",
            40.0,
            10.0,
            vec![("device".into(), "apu".into())],
        );
        tvmnp_telemetry::disable();
        let r = utilization_from_snapshot(&tvmnp_telemetry::snapshot());
        assert!((r.span_us - 50.0).abs() < 1e-9);
        assert!((r.device("cpu").unwrap().busy_us - 40.0).abs() < 1e-9);
        assert!((r.device("apu").unwrap().busy_us - 50.0).abs() < 1e-9);
        assert!((r.overlap_us - 40.0).abs() < 1e-9);
    }

    #[test]
    fn timeline_report_matches_timeline_accessors() {
        let mut t = Timeline::new();
        t.reserve(DeviceKind::Cpu, 0.0, 50.0, "a");
        t.reserve(DeviceKind::Apu, 0.0, 200.0, "b");
        t.reserve(DeviceKind::Cpu, 80.0, 20.0, "c");
        let r = utilization_from_timeline(&t);
        assert!((r.span_us - t.makespan_us()).abs() < 1e-9);
        for d in [DeviceKind::Cpu, DeviceKind::Apu] {
            let u = r.device(d.name()).unwrap();
            assert!((u.busy_us - t.busy_us(d)).abs() < 1e-9);
            assert!((u.idle_us - t.idle_us(d)).abs() < 1e-9);
        }
        assert_eq!(devices_used(&t), vec![DeviceKind::Cpu, DeviceKind::Apu]);
    }
}
