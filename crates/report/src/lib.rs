//! # tvmnp-report
//!
//! Run-report analysis layer on top of `tvmnp-telemetry` and the hwsim
//! timeline: turns raw spans, Gantt segments, and analytic cost
//! breakdowns into the structured summaries the paper's evaluation
//! sections reason about.
//!
//! * [`util`] — per-device utilization/occupancy (busy, idle, overlap) on
//!   the simulated timeline, from either a telemetry [`Snapshot`] or an
//!   hwsim `Timeline`.
//! * [`schedule`] — idle-gap and critical-path analysis for pipeline
//!   schedules (Fig. 5): *which* chain of stage runs sets the makespan
//!   and where pipelining still leaves devices idle.
//! * [`coverage`] — partition coverage: ops offloaded to Neuron IR vs
//!   left on the TVM fallback, per op kind (Fig. 4's support story).
//! * [`attribution`] — top-K op cost attribution by `(op, device)`.
//! * [`dot`] — annotated Graphviz dump of the partitioned graph with
//!   per-node timing heat.
//! * [`bench`] — benchmark baselines: a stable, byte-deterministic JSON
//!   record of a workload's metrics plus threshold-gated regression
//!   comparison (`--bench-out` / `--check-against` in the bench binary).
//! * [`resilience`] — aggregation of the `resilience.*` telemetry from
//!   fault-injected runs: retries, fallbacks, breaker trips, dropped
//!   frames, and post-degradation latency.

pub mod attribution;
pub mod bench;
pub mod coverage;
pub mod dot;
pub mod resilience;
pub mod schedule;
pub mod util;

pub use attribution::{attribute_breakdown, attribute_spans, OpCost};
pub use bench::{compare, BenchIoError, BenchRecord, Comparison, MetricStats, SCHEMA_VERSION};
pub use coverage::{coverage, CoverageReport, OpCoverage};
pub use dot::dot_graph;
pub use resilience::{FallbackEdge, FallbackTransition, ResilienceReport};
pub use schedule::{analyze_schedule, critical_path, PathStep, ScheduleReport, WaitReason};
pub use util::{
    utilization_from_snapshot, utilization_from_timeline, DeviceUtil, UtilizationReport,
};

use tvmnp_telemetry::Snapshot;

/// One run's aggregated report: utilization plus cost attribution, with
/// optional partition coverage.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Workload/model label.
    pub name: String,
    /// Per-device busy/idle accounting over the run.
    pub utilization: UtilizationReport,
    /// Top-K `(op, device)` cost groups, most expensive first.
    pub top_ops: Vec<OpCost>,
    /// Partition coverage, when the run went through the BYOC flow.
    pub coverage: Option<CoverageReport>,
}

impl RunReport {
    /// Build a report from a traced run's snapshot. `top_k = 0` keeps
    /// every cost group.
    pub fn from_snapshot(
        name: impl Into<String>,
        snap: &Snapshot,
        coverage: Option<CoverageReport>,
        top_k: usize,
    ) -> RunReport {
        RunReport {
            name: name.into(),
            utilization: utilization_from_snapshot(snap),
            top_ops: attribute_spans(snap, "executor.node", top_k),
            coverage,
        }
    }

    /// Render the whole report as human-readable text.
    pub fn render_text(&self) -> String {
        let mut out = format!("== run report: {} ==\n\n", self.name);
        out.push_str("-- device utilization (simulated) --\n");
        out.push_str(&self.utilization.render_text());
        out.push_str("\n-- top op costs --\n");
        out.push_str(&attribution::render_text(&self.top_ops));
        if let Some(cov) = &self.coverage {
            out.push_str("\n-- partition coverage --\n");
            out.push_str(&cov.render_text());
        }
        out
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use parking_lot::Mutex;

    /// The telemetry collector is process-global; tests that record
    /// spans serialize on this lock.
    pub fn lock() -> parking_lot::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_report_combines_utilization_and_attribution() {
        let _l = testutil::lock();
        tvmnp_telemetry::enable();
        tvmnp_telemetry::reset();
        for (op, device, ts, us) in [
            ("nn.conv2d", "apu", 0.0, 70.0),
            ("nn.softmax", "cpu", 70.0, 10.0),
        ] {
            tvmnp_telemetry::record_sim_span(
                "executor.node",
                ts,
                us,
                vec![("op".into(), op.into()), ("device".into(), device.into())],
            );
        }
        tvmnp_telemetry::disable();
        let report = RunReport::from_snapshot("toy", &tvmnp_telemetry::snapshot(), None, 5);
        assert!((report.utilization.span_us - 80.0).abs() < 1e-9);
        assert_eq!(report.top_ops[0].op, "nn.conv2d");
        let text = report.render_text();
        assert!(text.contains("run report: toy"));
        assert!(text.contains("nn.conv2d"));
        assert!(text.contains("device utilization"));
        assert!(!text.contains("partition coverage"), "no coverage given");
    }
}
