//! Resilience report: aggregate the `resilience.*` telemetry emitted by
//! fault-injected runs (retries, fallbacks, breaker trips, dropped
//! frames) into a table the bench binaries print next to the figures.
//!
//! The numbers come straight from the metrics registry plus the
//! simulated-time `resilience.retry` / `resilience.fallback` spans, so a
//! run with fault injection disabled yields an all-zero report.

#![deny(clippy::unwrap_used)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use tvmnp_telemetry::{MetricValue, Snapshot};

/// One observed degradation step, `from → to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FallbackEdge {
    /// Permutation that failed.
    pub from: String,
    /// Permutation tried next (`"<exhausted>"` on the last chain step).
    pub to: String,
    /// How many times this edge was taken.
    pub count: u64,
}

/// One structured fallback transition, reconstructed from a
/// `resilience.fallback` span's args — the event-level view (which model,
/// which cause stage, full detail) that the counter-level
/// [`FallbackEdge`]s aggregate away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FallbackTransition {
    /// Model the session was running.
    pub model: String,
    /// Permutation that failed.
    pub from: String,
    /// Permutation tried next (`"<exhausted>"` on the last chain step).
    pub to: String,
    /// Cause stage: `breaker`, `compile`, `build`, or `run`.
    pub cause: String,
    /// Human-readable fault detail.
    pub detail: String,
}

/// Aggregated resilience telemetry for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceReport {
    /// Retries per device (`resilience.retries{device=}`).
    pub retries: BTreeMap<String, u64>,
    /// Degradation edges taken (`resilience.fallback{from=,to=}`).
    pub fallbacks: Vec<FallbackEdge>,
    /// Circuit-breaker trips per device (`resilience.breaker_trips{device=}`).
    pub breaker_trips: BTreeMap<String, u64>,
    /// Runs that completed after at least one fault (`resilience.recovered`).
    pub recovered: u64,
    /// Runs that exhausted the whole fallback chain (`resilience.failed`).
    pub failed: u64,
    /// Vision frames with dropped stages, per stage
    /// (`vision.frames_dropped{stage=}`).
    pub frames_dropped: BTreeMap<String, u64>,
    /// Frames a real-time consumer would drop from the schedule
    /// (`scheduler.frames_dropped`).
    pub sched_frames_dropped: u64,
    /// Final simulated latency per `model @ permutation`
    /// (`resilience.final_us{model=,permutation=}`).
    pub final_us: BTreeMap<String, f64>,
    /// Number of `resilience.retry` simulated-time spans in the trace.
    pub retry_spans: usize,
    /// Number of `resilience.fallback` simulated-time spans in the trace.
    pub fallback_spans: usize,
    /// Structured fallback transitions in trace order, each carrying the
    /// model, the edge, and the cause stage/detail.
    pub transitions: Vec<FallbackTransition>,
}

impl ResilienceReport {
    /// Aggregate a traced run's snapshot.
    pub fn from_snapshot(snap: &Snapshot) -> ResilienceReport {
        let mut report = ResilienceReport::default();
        for (key, value) in &snap.metrics {
            match (key.name.as_str(), value) {
                ("resilience.retries", MetricValue::Counter(c)) => {
                    let device = label(key, "device");
                    *report.retries.entry(device).or_insert(0) += c;
                }
                ("resilience.fallback", MetricValue::Counter(c)) => {
                    report.fallbacks.push(FallbackEdge {
                        from: label(key, "from"),
                        to: label(key, "to"),
                        count: *c,
                    });
                }
                ("resilience.breaker_trips", MetricValue::Counter(c)) => {
                    let device = label(key, "device");
                    *report.breaker_trips.entry(device).or_insert(0) += c;
                }
                ("resilience.recovered", MetricValue::Counter(c)) => report.recovered += c,
                ("resilience.failed", MetricValue::Counter(c)) => report.failed += c,
                ("vision.frames_dropped", MetricValue::Counter(c)) => {
                    let stage = label(key, "stage");
                    *report.frames_dropped.entry(stage).or_insert(0) += c;
                }
                ("scheduler.frames_dropped", MetricValue::Counter(c)) => {
                    report.sched_frames_dropped += c;
                }
                ("resilience.final_us", MetricValue::Gauge(v)) => {
                    let key = format!("{} @ {}", label(key, "model"), label(key, "permutation"));
                    report.final_us.insert(key, *v);
                }
                _ => {}
            }
        }
        for e in &snap.events {
            match e.name.as_str() {
                "resilience.retry" => report.retry_spans += 1,
                "resilience.fallback" => {
                    report.fallback_spans += 1;
                    report.transitions.push(FallbackTransition {
                        model: arg(e, "model"),
                        from: arg(e, "from"),
                        to: arg(e, "to"),
                        cause: arg(e, "cause"),
                        detail: arg(e, "detail"),
                    });
                }
                _ => {}
            }
        }
        report
    }

    /// Total retries across devices.
    pub fn total_retries(&self) -> u64 {
        self.retries.values().sum()
    }

    /// Total degradation edges taken.
    pub fn total_fallbacks(&self) -> u64 {
        self.fallbacks.iter().map(|f| f.count).sum()
    }

    /// Whether any resilience machinery fired at all.
    pub fn is_quiet(&self) -> bool {
        self == &ResilienceReport::default()
    }

    /// Render the report as human-readable text.
    pub fn render_text(&self) -> String {
        let mut out = String::from("== resilience report ==\n");
        if self.is_quiet() {
            out.push_str("no faults injected, no retries, no fallbacks\n");
            return out;
        }
        let _ = writeln!(
            out,
            "recovered runs: {}    exhausted runs: {}",
            self.recovered, self.failed
        );
        if !self.retries.is_empty() {
            let _ = writeln!(out, "retries ({} total):", self.total_retries());
            for (device, n) in &self.retries {
                let _ = writeln!(out, "  {device:<8} {n}");
            }
        }
        if !self.fallbacks.is_empty() {
            let _ = writeln!(out, "fallbacks ({} total):", self.total_fallbacks());
            for f in &self.fallbacks {
                let _ = writeln!(out, "  {} -> {}  x{}", f.from, f.to, f.count);
            }
        }
        if !self.transitions.is_empty() {
            out.push_str("fallback transitions (trace order):\n");
            for t in &self.transitions {
                let _ = writeln!(
                    out,
                    "  [{}] {} -> {}  cause={}  {}",
                    t.model, t.from, t.to, t.cause, t.detail
                );
            }
        }
        if !self.breaker_trips.is_empty() {
            out.push_str("breaker trips:\n");
            for (device, n) in &self.breaker_trips {
                let _ = writeln!(out, "  {device:<8} {n}");
            }
        }
        if !self.frames_dropped.is_empty() {
            out.push_str("vision stages dropped:\n");
            for (stage, n) in &self.frames_dropped {
                let _ = writeln!(out, "  {stage:<12} {n}");
            }
        }
        if self.sched_frames_dropped > 0 {
            let _ = writeln!(
                out,
                "schedule frames dropped: {}",
                self.sched_frames_dropped
            );
        }
        if !self.final_us.is_empty() {
            out.push_str("final latency after degradation:\n");
            for (key, us) in &self.final_us {
                let _ = writeln!(out, "  {key:<40} {:.1} us", us);
            }
        }
        out
    }
}

/// Read one label off a metric key (empty string when absent).
fn label(key: &tvmnp_telemetry::MetricKey, name: &str) -> String {
    key.labels.get(name).cloned().unwrap_or_default()
}

/// Read one arg off a span event (empty string when absent).
fn arg(event: &tvmnp_telemetry::SpanEvent, name: &str) -> String {
    event
        .args
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.clone())
        .unwrap_or_default()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_resilience_metrics_and_spans() {
        let _l = crate::testutil::lock();
        tvmnp_telemetry::enable();
        tvmnp_telemetry::reset();
        tvmnp_telemetry::counter_add("resilience.retries", &[("device", "apu")], 2);
        tvmnp_telemetry::counter_add("resilience.retries", &[("device", "cpu")], 1);
        tvmnp_telemetry::counter_add(
            "resilience.fallback",
            &[("from", "NP-only APU"), ("to", "BYOC CPU")],
            1,
        );
        tvmnp_telemetry::counter_add("resilience.breaker_trips", &[("device", "apu")], 1);
        tvmnp_telemetry::counter_add("resilience.recovered", &[], 1);
        tvmnp_telemetry::counter_add("vision.frames_dropped", &[("stage", "emotion")], 3);
        tvmnp_telemetry::counter_add("scheduler.frames_dropped", &[("frame", "over-deadline")], 2);
        tvmnp_telemetry::gauge_set(
            "resilience.final_us",
            &[("model", "anti-spoofing"), ("permutation", "BYOC CPU")],
            123.5,
        );
        tvmnp_telemetry::record_sim_span(
            "resilience.retry",
            0.0,
            40.0,
            vec![("device".into(), "apu".into())],
        );
        tvmnp_telemetry::record_sim_span(
            "resilience.fallback",
            1.0,
            0.0,
            vec![
                ("model".into(), "anti-spoofing".into()),
                ("from".into(), "NP-only APU".into()),
                ("to".into(), "BYOC CPU".into()),
                ("cause".into(), "run".into()),
                ("detail".into(), "transient dispatch fault on apu".into()),
            ],
        );
        tvmnp_telemetry::disable();

        let report = ResilienceReport::from_snapshot(&tvmnp_telemetry::snapshot());
        assert_eq!(report.total_retries(), 3);
        assert_eq!(report.retries["apu"], 2);
        assert_eq!(report.total_fallbacks(), 1);
        assert_eq!(report.fallbacks[0].from, "NP-only APU");
        assert_eq!(report.breaker_trips["apu"], 1);
        assert_eq!(report.recovered, 1);
        assert_eq!(report.failed, 0);
        assert_eq!(report.frames_dropped["emotion"], 3);
        assert_eq!(report.sched_frames_dropped, 2);
        assert_eq!(report.retry_spans, 1);
        assert_eq!(report.fallback_spans, 1);
        assert_eq!(report.transitions.len(), 1);
        assert_eq!(report.transitions[0].model, "anti-spoofing");
        assert_eq!(report.transitions[0].cause, "run");
        assert!(report.transitions[0].detail.contains("apu"));
        assert!(!report.is_quiet());

        let text = report.render_text();
        assert!(text.contains("resilience report"));
        assert!(text.contains("NP-only APU -> BYOC CPU"));
        assert!(text.contains("cause=run"));
        assert!(text.contains("anti-spoofing @ BYOC CPU"));
        assert!(text.contains("recovered runs: 1"));
    }

    #[test]
    fn empty_snapshot_is_quiet() {
        let _l = crate::testutil::lock();
        tvmnp_telemetry::enable();
        tvmnp_telemetry::reset();
        tvmnp_telemetry::disable();
        let report = ResilienceReport::from_snapshot(&tvmnp_telemetry::snapshot());
        assert!(report.is_quiet());
        assert!(report.render_text().contains("no faults injected"));
    }
}
