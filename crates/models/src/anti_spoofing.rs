//! The face anti-spoofing model (paper §4.1): DeePixBiS — "Deep Pixel-wise
//! Binary Supervision" — imported from PyTorch via `torch.jit.trace`, as
//! in Listing 2.
//!
//! Architecture-faithful skeleton: a DenseNet-style feature extractor
//! (the original takes DenseNet-161's first blocks) with *unfused*
//! `aten::batch_norm` before every convolution, followed by a 1×1
//! convolution + sigmoid producing the pixel-wise binary map. The
//! interleaved batch norms are the reason this model (a) cannot compile
//! NeuroPilot-only and (b) shatters into the paper's "large number of
//! subgraphs" under BYOC — both observations of Fig. 4.

use crate::{Framework, Model};
use tvmnp_frontends::pytorch::{batch_norm_entry, from_pytorch, TorchNode, TracedModule};
use tvmnp_tensor::rng::TensorRng;
use tvmnp_tensor::{DType, Tensor};

/// Number of dense blocks in the scaled-down extractor.
pub const NUM_BLOCKS: usize = 2;
/// Dense layers per block.
pub const LAYERS_PER_BLOCK: usize = 3;
/// Growth rate (channels added per dense layer).
pub const GROWTH: usize = 16;

/// Assemble the traced PyTorch module (the artifact of
/// `torch.jit.trace(DeePixBiS(), input)`).
pub fn traced_deepixbis(seed: u64) -> TracedModule {
    let mut rng = TensorRng::new(seed);
    let mut nodes: Vec<TorchNode> = Vec::new();
    let mut state = std::collections::HashMap::new();
    let mut vid = 0usize;
    let mut fresh = || {
        vid += 1;
        format!("%{vid}")
    };

    let mut bn_count = 0usize;
    let mut conv_count = 0usize;

    // Stem: conv 3->32 stride 1 pad 1, bn, relu, maxpool /2.
    let input = "%x".to_string();
    let stem_w = rng.kaiming_f32([32, 3, 3, 3], 27);
    state.insert("stem.weight".into(), stem_w);
    let c0 = fresh();
    nodes.push(
        TorchNode::new("aten::conv2d", &[&input, "stem.weight"], &c0)
            .with_ints("stride", vec![1, 1])
            .with_ints("padding", vec![1, 1]),
    );
    conv_count += 1;
    let mut cur = c0;
    let mut cur_c = 32usize;

    let add_bn = |nodes: &mut Vec<TorchNode>,
                  state: &mut std::collections::HashMap<String, Tensor>,
                  rng: &mut TensorRng,
                  bn_count: &mut usize,
                  cur: &str,
                  channels: usize,
                  out: &str| {
        let prefix = format!("bn{}", *bn_count);
        *bn_count += 1;
        batch_norm_entry(
            state,
            &prefix,
            rng.uniform_f32([channels], 0.9, 1.1),
            rng.uniform_f32([channels], -0.1, 0.1),
            rng.uniform_f32([channels], -0.1, 0.1),
            rng.uniform_f32([channels], 0.9, 1.1),
        );
        nodes.push(
            TorchNode::new(
                "aten::batch_norm",
                &[
                    cur,
                    &format!("{prefix}.weight"),
                    &format!("{prefix}.bias"),
                    &format!("{prefix}.running_mean"),
                    &format!("{prefix}.running_var"),
                ],
                out,
            )
            .with_float("eps", 1e-5),
        );
    };

    {
        let b = fresh();
        add_bn(
            &mut nodes,
            &mut state,
            &mut rng,
            &mut bn_count,
            &cur,
            cur_c,
            &b,
        );
        let r = fresh();
        nodes.push(TorchNode::new("aten::relu", &[&b], &r));
        let p = fresh();
        nodes.push(
            TorchNode::new("aten::max_pool2d", &[&r], &p).with_ints("kernel_size", vec![2, 2]),
        );
        cur = p;
    }

    // Dense blocks: layer = bn -> relu -> conv(growth) ; concat(features).
    for block in 0..NUM_BLOCKS {
        for layer in 0..LAYERS_PER_BLOCK {
            let b = fresh();
            add_bn(
                &mut nodes,
                &mut state,
                &mut rng,
                &mut bn_count,
                &cur,
                cur_c,
                &b,
            );
            let r = fresh();
            nodes.push(TorchNode::new("aten::relu", &[&b], &r));
            let wname = format!("block{block}.layer{layer}.weight");
            state.insert(
                wname.clone(),
                rng.kaiming_f32([GROWTH, cur_c, 3, 3], cur_c * 9),
            );
            let c = fresh();
            nodes.push(
                TorchNode::new("aten::conv2d", &[&r, &wname], &c)
                    .with_ints("stride", vec![1, 1])
                    .with_ints("padding", vec![1, 1]),
            );
            conv_count += 1;
            let cat = fresh();
            nodes.push(TorchNode::new("aten::cat", &[&cur, &c], &cat).with_ints("dim", vec![1]));
            cur = cat;
            cur_c += GROWTH;
        }
        // Transition: bn -> relu -> 1x1 conv (halve channels) -> avgpool /2.
        if block + 1 < NUM_BLOCKS {
            let b = fresh();
            add_bn(
                &mut nodes,
                &mut state,
                &mut rng,
                &mut bn_count,
                &cur,
                cur_c,
                &b,
            );
            let r = fresh();
            nodes.push(TorchNode::new("aten::relu", &[&b], &r));
            let wname = format!("trans{block}.weight");
            let out_c = cur_c / 2;
            state.insert(wname.clone(), rng.kaiming_f32([out_c, cur_c, 1, 1], cur_c));
            let c = fresh();
            nodes.push(TorchNode::new("aten::conv2d", &[&r, &wname], &c));
            conv_count += 1;
            let p = fresh();
            nodes.push(
                TorchNode::new("aten::avg_pool2d", &[&c], &p).with_ints("kernel_size", vec![2, 2]),
            );
            cur = p;
            cur_c = out_c;
        }
    }

    // Pixel-wise binary head: 1x1 conv to a single map + sigmoid.
    state.insert(
        "head.weight".into(),
        rng.kaiming_f32([1, cur_c, 1, 1], cur_c),
    );
    let h = fresh();
    nodes.push(TorchNode::new("aten::conv2d", &[&cur, "head.weight"], &h));
    conv_count += 1;
    let out = fresh();
    nodes.push(TorchNode::new("aten::sigmoid", &[&h], &out));

    debug_assert!(bn_count >= NUM_BLOCKS * LAYERS_PER_BLOCK);
    debug_assert!(conv_count >= NUM_BLOCKS * LAYERS_PER_BLOCK);

    TracedModule {
        nodes,
        inputs: vec![input],
        output: out,
        state_dict: state,
    }
}

/// Import DeePixBiS through the PyTorch frontend. Input: `1×3×32×32` face
/// crop; output: a pixel-wise liveness map in `(0, 1)`.
pub fn anti_spoofing_model(seed: u64) -> Model {
    let traced = traced_deepixbis(seed);
    let module = from_pytorch(&traced, &[("%x".to_string(), vec![1, 3, 32, 32])])
        .expect("DeePixBiS imports");
    Model {
        name: "anti-spoofing".into(),
        dtype: DType::F32,
        framework: Framework::PyTorch,
        module,
        input_name: "%x".into(),
        input_shape: vec![1, 3, 32, 32],
        input_quant: None,
    }
}

/// Decision rule used by the application: mean pixel liveness > threshold
/// means the face is real.
pub fn is_real_face(pixel_map: &Tensor, threshold: f32) -> bool {
    let f = pixel_map.to_f32();
    let v = f.as_f32().unwrap();
    let mean = v.iter().sum::<f32>() / v.len().max(1) as f32;
    mean > threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvmnp_relay::interp::run_module;

    #[test]
    fn produces_pixel_map_in_unit_range() {
        let m = anti_spoofing_model(11);
        let out = run_module(&m.module, &m.sample_inputs(12)).unwrap();
        let d = out.shape().dims();
        assert_eq!(d[0], 1);
        assert_eq!(d[1], 1);
        assert!(d[2] > 1 && d[3] > 1, "pixel-wise map, not a scalar");
        assert!(out
            .as_f32()
            .unwrap()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn contains_unfused_batch_norms() {
        let m = anti_spoofing_model(11);
        let bn = tvmnp_relay::visit::topo_order(&m.module.main().body)
            .iter()
            .filter(|e| e.op().map(|o| o.name() == "nn.batch_norm").unwrap_or(false))
            .count();
        assert!(bn >= 7, "DeePixBiS must keep its BN layers (got {bn})");
    }

    #[test]
    fn np_only_compilation_impossible() {
        let m = anti_spoofing_model(11);
        let simplified = tvmnp_relay::passes::simplify(&m.module);
        assert_eq!(
            tvmnp_neuropilot::support::first_unsupported(simplified.main()),
            Some("nn.batch_norm".to_string())
        );
    }

    #[test]
    fn shatters_into_many_subgraphs_under_byoc() {
        let m = anti_spoofing_model(11);
        let (_, report) = tvmnp_relay::passes::partition_graph(
            &m.module,
            &tvmnp_neuropilot::support::NeuronSupport,
        )
        .unwrap();
        assert!(
            report.num_subgraphs >= 6,
            "the Fig. 4 story needs many subgraphs, got {}",
            report.num_subgraphs
        );
    }

    #[test]
    fn decision_rule() {
        let hot = Tensor::from_f32([1, 1, 2, 2], vec![0.9, 0.8, 0.95, 0.9]).unwrap();
        let cold = Tensor::from_f32([1, 1, 2, 2], vec![0.1, 0.2, 0.05, 0.1]).unwrap();
        assert!(is_real_face(&hot, 0.5));
        assert!(!is_real_face(&cold, 0.5));
    }
}
