//! # tvmnp-models
//!
//! The model zoo of the reproduction: the three application-showcase
//! models (paper §4) and the evaluation networks of §6 / Table 1.
//!
//! Weights are seeded-deterministic rather than pretrained: every figure in
//! the paper measures inference *time*, which depends on architecture, not
//! on learned weight values (DESIGN.md records this substitution). The
//! *provenance* of each model is faithful — each showcase model is
//! constructed as its origin framework's artifact and imported through the
//! corresponding `tvmnp-frontends` importer:
//!
//! * [`anti_spoofing`] — DeePixBiS (DenseNet-style, unfused BN, pixel-wise
//!   sigmoid head) as a traced PyTorch module;
//! * [`emotion`] — the Keras `Sequential` FER CNN of paper Listing 4;
//! * [`object_detection`] — YOLOv3-tiny-style Darknet cfg+weights, and the
//!   quantized MobileNet-SSD as a TFLite buffer;
//! * [`zoo`] — densenet / inception-resnet-v2 / inception v3 / v4 /
//!   mobilenet v1 / v2 / nasnet (float32) and quantized inception-v3 /
//!   mobilenet-v1 / v2 (Table 1's dtype column).
//!
//! Spatial sizes and widths are scaled down from the originals by a
//! uniform rule so the whole suite executes numerically in CI; orderings
//! of the simulated times are preserved (see EXPERIMENTS.md).

pub mod anti_spoofing;
pub mod emotion;
pub mod object_detection;
pub mod zoo;

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tvmnp_relay::Module;
use tvmnp_tensor::rng::TensorRng;
use tvmnp_tensor::{DType, QuantParams, Tensor};

/// A ready-to-compile model with its input signature.
pub struct Model {
    /// Model name as the paper spells it.
    pub name: String,
    /// Data type column of Table 1.
    pub dtype: DType,
    /// Origin framework (provenance label).
    pub framework: Framework,
    /// The imported Relay module.
    pub module: Module,
    /// Input tensor name.
    pub input_name: String,
    /// Input shape.
    pub input_shape: Vec<usize>,
    /// Input quantization for quantized models.
    pub input_quant: Option<QuantParams>,
}

/// Origin framework of a model — the heterogeneity the showcase exists to
/// demonstrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Framework {
    /// PyTorch (traced TorchScript).
    PyTorch,
    /// Keras (Sequential).
    Keras,
    /// TFLite (quantized flatbuffer).
    Tflite,
    /// Darknet (cfg + weights blob).
    Darknet,
    /// ONNX.
    Onnx,
    /// Built directly at the Relay level (zoo networks).
    Relay,
}

impl Framework {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Framework::PyTorch => "PyTorch",
            Framework::Keras => "Keras",
            Framework::Tflite => "TFLite",
            Framework::Darknet => "Darknet",
            Framework::Onnx => "ONNX",
            Framework::Relay => "Relay",
        }
    }
}

impl Model {
    /// A deterministic sample input for this model.
    pub fn sample_input(&self, seed: u64) -> Tensor {
        let mut rng = TensorRng::new(seed);
        match self.input_quant {
            Some(q) => rng.uniform_quantized(self.input_shape.clone(), self.dtype_in(), q),
            None => rng.uniform_f32(self.input_shape.clone(), -1.0, 1.0),
        }
    }

    /// Input dtype (quantized models take quantized inputs).
    fn dtype_in(&self) -> DType {
        if self.input_quant.is_some() {
            DType::U8
        } else {
            DType::F32
        }
    }

    /// Named input map for the executors.
    pub fn inputs_from(&self, t: Tensor) -> HashMap<String, Tensor> {
        let mut m = HashMap::new();
        m.insert(self.input_name.clone(), t);
        m
    }

    /// Convenience: named sample-input map.
    pub fn sample_inputs(&self, seed: u64) -> HashMap<String, Tensor> {
        self.inputs_from(self.sample_input(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framework_names() {
        assert_eq!(Framework::PyTorch.name(), "PyTorch");
        assert_eq!(Framework::Tflite.name(), "TFLite");
    }

    #[test]
    fn sample_inputs_deterministic() {
        let m = emotion::emotion_model(7);
        let a = m.sample_input(1);
        let b = m.sample_input(1);
        assert!(a.bit_eq(&b));
    }
}
