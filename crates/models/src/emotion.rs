//! The emotion-detection model (paper §4.3, Listing 4): a Keras
//! `Sequential` CNN over 48×48 grayscale faces, classifying the seven
//! basic emotions (angry, disgusted, fearful, happy, neutral, sad,
//! surprised).
//!
//! Layer stack follows Listing 4's classic FER-2013 architecture, with the
//! channel widths scaled by 1/4 so the suite runs numerically in CI
//! (32→8, 64→16, 128→32, 1024→64).

use crate::{Framework, Model};
use tvmnp_frontends::keras::{from_keras, Activation, KerasLayer, KerasModel};
use tvmnp_tensor::rng::TensorRng;
use tvmnp_tensor::DType;

/// The seven emotion labels, in output order.
pub const EMOTIONS: [&str; 7] = [
    "angry",
    "disgusted",
    "fearful",
    "happy",
    "neutral",
    "sad",
    "surprised",
];

/// Build the Keras model description (the `build_model` of Listing 4).
pub fn keras_emotion_model(seed: u64) -> KerasModel {
    let mut rng = TensorRng::new(seed);
    let conv = |rng: &mut TensorRng, in_c: usize, filters: usize| KerasLayer::Conv2D {
        filters,
        kernel_size: (3, 3),
        activation: Activation::Relu,
        same_padding: false,
        kernel: rng.kaiming_f32([3, 3, in_c, filters], in_c * 9),
        bias: rng.uniform_f32([filters], -0.05, 0.05),
    };
    // 48x48x1 -> conv8 -> conv16 -> pool -> dropout
    //   -> conv32 -> pool -> conv32 -> pool -> dropout
    //   -> flatten -> dense64 -> dropout -> dense7(softmax)
    // After convs/pools: 48->46->44->22->20->10->8->4, 32 channels.
    let flat = 32 * 4 * 4;
    KerasModel {
        input_shape: (48, 48, 1),
        layers: vec![
            conv(&mut rng, 1, 8),
            conv(&mut rng, 8, 16),
            KerasLayer::MaxPooling2D { pool_size: (2, 2) },
            KerasLayer::Dropout { rate: 0.25 },
            conv(&mut rng, 16, 32),
            KerasLayer::MaxPooling2D { pool_size: (2, 2) },
            conv(&mut rng, 32, 32),
            KerasLayer::MaxPooling2D { pool_size: (2, 2) },
            KerasLayer::Dropout { rate: 0.25 },
            KerasLayer::Flatten,
            KerasLayer::Dense {
                units: 64,
                activation: Activation::Relu,
                kernel: rng.kaiming_f32([flat, 64], flat),
                bias: rng.uniform_f32([64], -0.05, 0.05),
            },
            KerasLayer::Dropout { rate: 0.5 },
            KerasLayer::Dense {
                units: 7,
                activation: Activation::Softmax,
                kernel: rng.kaiming_f32([64, 7], 64),
                bias: rng.uniform_f32([7], -0.05, 0.05),
            },
        ],
    }
}

/// Import the emotion model through the Keras frontend.
pub fn emotion_model(seed: u64) -> Model {
    let keras = keras_emotion_model(seed);
    let module = from_keras(&keras).expect("emotion model imports");
    Model {
        name: "emotion-detection".into(),
        dtype: DType::F32,
        framework: Framework::Keras,
        module,
        input_name: "input_1".into(),
        input_shape: vec![1, 1, 48, 48],
        input_quant: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvmnp_relay::interp::run_module;

    #[test]
    fn classifies_into_seven_emotions() {
        let m = emotion_model(3);
        let out = run_module(&m.module, &m.sample_inputs(5)).unwrap();
        assert_eq!(out.shape().dims(), &[1, 7]);
        let probs = out.as_f32().unwrap();
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(out.argmax() < EMOTIONS.len());
    }

    #[test]
    fn fully_neuropilot_supported() {
        // The emotion model is the one showcase model whose NP-only bars
        // exist in Fig. 4: every op must be Neuron-convertible after the
        // dropout simplification.
        let m = emotion_model(3);
        let simplified = tvmnp_relay::passes::simplify(&m.module);
        assert!(tvmnp_neuropilot::support::first_unsupported(simplified.main()).is_none());
    }

    #[test]
    fn op_mix_matches_listing4() {
        let m = emotion_model(3);
        let names: Vec<&str> = tvmnp_relay::visit::topo_order(&m.module.main().body)
            .iter()
            .filter_map(|e| e.op().map(|o| o.name()))
            .collect();
        assert_eq!(names.iter().filter(|n| **n == "nn.conv2d").count(), 4);
        assert_eq!(names.iter().filter(|n| **n == "nn.max_pool2d").count(), 3);
        assert_eq!(names.iter().filter(|n| **n == "nn.dense").count(), 2);
        assert_eq!(names.iter().filter(|n| **n == "nn.softmax").count(), 1);
        assert_eq!(names.iter().filter(|n| **n == "nn.dropout").count(), 3);
    }
}
