//! Object-detection models (paper §4.2).
//!
//! Two models, as in the paper: a YOLOv3-style Darknet network for the
//! server-side flow (Listing 3), and the quantized MobileNet-SSD TFLite
//! model preferred on the phone — smaller, int8, and the vehicle for the
//! QNN flow of §3.3. The SSD's box-decoding tail (`DEQUANTIZE` + `EXP`)
//! is the NeuroPilot-unsupported part that keeps its NP-only bars out of
//! Fig. 4 while BYOC handles it by leaving the tail on TVM.

use crate::{Framework, Model};
use tvmnp_frontends::darknet::{conv_weight_count, DarknetNet, Section};
use tvmnp_frontends::tflite::{TfliteModel, TfliteOp, TfliteTensor, ACT_RELU6, PADDING_SAME};
use tvmnp_tensor::rng::TensorRng;
use tvmnp_tensor::{DType, QuantParams, Tensor};

/// Build the YOLOv3-tiny-style Darknet artifact: conv/maxpool trunk, a
/// route + upsample feature merge, and a logistic `[yolo]` head.
pub fn darknet_yolo(seed: u64) -> DarknetNet {
    let sections = vec![
        Section::new("net")
            .with("channels", 3)
            .with("height", 64)
            .with("width", 64),
        Section::new("convolutional")
            .with("filters", 16)
            .with("size", 3)
            .with("stride", 1)
            .with("pad", 1)
            .with("batch_normalize", 1)
            .with("activation", "leaky"),
        Section::new("maxpool").with("size", 2).with("stride", 2),
        Section::new("convolutional")
            .with("filters", 32)
            .with("size", 3)
            .with("stride", 1)
            .with("pad", 1)
            .with("batch_normalize", 1)
            .with("activation", "leaky"),
        Section::new("maxpool").with("size", 2).with("stride", 2),
        Section::new("convolutional")
            .with("filters", 32)
            .with("size", 3)
            .with("stride", 1)
            .with("pad", 1)
            .with("batch_normalize", 1)
            .with("activation", "leaky"),
        // FPN-style merge: upsample the deep features and concat with the
        // earlier 32-channel map (layer index 3, counted from 0).
        Section::new("upsample").with("stride", 2),
        Section::new("route").with("layers", "-1,2"),
        Section::new("convolutional")
            .with("filters", 18) // 3 anchors x (4 box + 1 obj + 1 class)
            .with("size", 1)
            .with("stride", 1)
            .with("activation", "linear"),
        Section::new("yolo"),
    ];
    let n = conv_weight_count(3, 16, 3, true)
        + conv_weight_count(16, 32, 3, true)
        + conv_weight_count(32, 32, 3, true)
        + conv_weight_count(64, 18, 1, false);
    let mut rng = TensorRng::new(seed);
    // Positive blob: BN rolling variances live inside it.
    let weights = rng.uniform_f32([n], 0.01, 0.3).as_f32().unwrap().to_vec();
    DarknetNet { sections, weights }
}

/// Import the YOLO model through the Darknet frontend.
pub fn yolo_model(seed: u64) -> Model {
    let net = darknet_yolo(seed);
    let module = tvmnp_frontends::darknet::from_darknet(&net).expect("yolo imports");
    Model {
        name: "yolov3-tiny".into(),
        dtype: DType::F32,
        framework: Framework::Darknet,
        module,
        input_name: "data".into(),
        input_shape: vec![1, 3, 64, 64],
        input_quant: None,
    }
}

/// Input quantization of the SSD model (image bytes 0..255 → real 0..1).
pub fn ssd_input_quant() -> QuantParams {
    QuantParams::new(1.0 / 255.0, 0)
}

/// Build the quantized MobileNet-SSD TFLite buffer: a depthwise-separable
/// backbone plus a detection head whose class scores pass `LOGISTIC` and
/// whose box sizes decode through `DEQUANTIZE` + `EXP`.
pub fn tflite_mobilenet_ssd(seed: u64) -> TfliteModel {
    let mut rng = TensorRng::new(seed);
    let qa = QuantParams::new(0.05, 128); // generic activation scale
    let qw = QuantParams::new(0.02, 128);
    let mut tensors: Vec<TfliteTensor> = Vec::new();
    let mut ops: Vec<TfliteOp> = Vec::new();

    let act = |tensors: &mut Vec<TfliteTensor>, name: &str, shape: Vec<usize>, q: QuantParams| {
        tensors.push(TfliteTensor {
            name: name.into(),
            shape,
            dtype: DType::U8,
            quant: Some(q),
            data: None,
        });
        tensors.len() - 1
    };
    let weight =
        |tensors: &mut Vec<TfliteTensor>, rng: &mut TensorRng, name: &str, shape: Vec<usize>| {
            let t = rng.uniform_quantized(shape.clone(), DType::U8, qw);
            tensors.push(TfliteTensor {
                name: name.into(),
                shape,
                dtype: DType::U8,
                quant: Some(qw),
                data: Some(t),
            });
            tensors.len() - 1
        };
    let bias = |tensors: &mut Vec<TfliteTensor>, name: &str, n: usize| {
        tensors.push(TfliteTensor {
            name: name.into(),
            shape: vec![n],
            dtype: DType::I32,
            quant: None,
            data: Some(Tensor::from_i32([n], vec![0; n], None).unwrap()),
        });
        tensors.len() - 1
    };

    // Input: 32x32 RGB, NHWC.
    let input = act(
        &mut tensors,
        "normalized_input",
        vec![1, 64, 64, 3],
        ssd_input_quant(),
    );

    // conv 3->32 stride 2, relu6.
    let w0 = weight(&mut tensors, &mut rng, "conv0/w", vec![32, 3, 3, 3]);
    let b0 = bias(&mut tensors, "conv0/b", 32);
    let a0 = act(&mut tensors, "conv0/out", vec![1, 32, 32, 32], qa);
    ops.push(
        TfliteOp::new("CONV_2D", vec![input, w0, b0], vec![a0])
            .with_opt("stride_h", 2)
            .with_opt("stride_w", 2)
            .with_opt("padding", PADDING_SAME)
            .with_opt("fused_activation", ACT_RELU6),
    );

    // Depthwise-separable block 1: dw 32, pw 32->64.
    let dw1 = weight(&mut tensors, &mut rng, "dw1/w", vec![1, 3, 3, 32]);
    let a1 = act(&mut tensors, "dw1/out", vec![1, 32, 32, 32], qa);
    ops.push(
        TfliteOp::new("DEPTHWISE_CONV_2D", vec![a0, dw1], vec![a1])
            .with_opt("padding", PADDING_SAME)
            .with_opt("fused_activation", ACT_RELU6),
    );
    let pw1 = weight(&mut tensors, &mut rng, "pw1/w", vec![64, 1, 1, 32]);
    let b1 = bias(&mut tensors, "pw1/b", 64);
    let a2 = act(&mut tensors, "pw1/out", vec![1, 32, 32, 64], qa);
    ops.push(
        TfliteOp::new("CONV_2D", vec![a1, pw1, b1], vec![a2])
            .with_opt("padding", PADDING_SAME)
            .with_opt("fused_activation", ACT_RELU6),
    );

    // Block 2 with stride 2: dw s2, pw 64->128.
    let dw2 = weight(&mut tensors, &mut rng, "dw2/w", vec![1, 3, 3, 64]);
    let a3 = act(&mut tensors, "dw2/out", vec![1, 16, 16, 64], qa);
    ops.push(
        TfliteOp::new("DEPTHWISE_CONV_2D", vec![a2, dw2], vec![a3])
            .with_opt("stride_h", 2)
            .with_opt("stride_w", 2)
            .with_opt("padding", PADDING_SAME)
            .with_opt("fused_activation", ACT_RELU6),
    );
    let pw2 = weight(&mut tensors, &mut rng, "pw2/w", vec![128, 1, 1, 64]);
    let b2 = bias(&mut tensors, "pw2/b", 128);
    let feat = act(&mut tensors, "features", vec![1, 16, 16, 128], qa);
    ops.push(
        TfliteOp::new("CONV_2D", vec![a3, pw2, b2], vec![feat])
            .with_opt("padding", PADDING_SAME)
            .with_opt("fused_activation", ACT_RELU6),
    );

    // Box (loc) branch: 1x1 conv to 64 ch, reshape to [1, 16384].
    let wl = weight(&mut tensors, &mut rng, "loc/w", vec![64, 1, 1, 128]);
    let bl = bias(&mut tensors, "loc/b", 64);
    let loc = act(&mut tensors, "loc/out", vec![1, 16, 16, 64], qa);
    ops.push(
        TfliteOp::new("CONV_2D", vec![feat, wl, bl], vec![loc]).with_opt("padding", PADDING_SAME),
    );
    let loc_flat = act(&mut tensors, "loc/flat", vec![1, 16384], qa);
    ops.push(TfliteOp::new("RESHAPE", vec![loc], vec![loc_flat]));
    // Box size decode: exp(dequantized loc deltas) — float output.
    tensors.push(TfliteTensor {
        name: "loc/decoded".into(),
        shape: vec![1, 16384],
        dtype: DType::F32,
        quant: None,
        data: None,
    });
    let loc_decoded = tensors.len() - 1;
    ops.push(TfliteOp::new("EXP", vec![loc_flat], vec![loc_decoded]));

    // Class (conf) branch: 1x1 conv to 32 ch, logistic, reshape to [1, 8192].
    let wc = weight(&mut tensors, &mut rng, "conf/w", vec![32, 1, 1, 128]);
    let bc = bias(&mut tensors, "conf/b", 32);
    let conf = act(&mut tensors, "conf/out", vec![1, 16, 16, 32], qa);
    ops.push(
        TfliteOp::new("CONV_2D", vec![feat, wc, bc], vec![conf]).with_opt("padding", PADDING_SAME),
    );
    let qs = QuantParams::new(1.0 / 256.0, 0);
    let scores = act(&mut tensors, "conf/scores", vec![1, 16, 16, 32], qs);
    ops.push(TfliteOp::new("LOGISTIC", vec![conf], vec![scores]));
    let scores_flat = act(&mut tensors, "conf/flat", vec![1, 8192], qs);
    ops.push(TfliteOp::new("RESHAPE", vec![scores], vec![scores_flat]));

    TfliteModel {
        tensors,
        ops,
        inputs: vec![input],
        outputs: vec![loc_decoded, scores_flat],
    }
}

/// Import the quantized SSD through the TFLite frontend.
pub fn mobilenet_ssd_model(seed: u64) -> Model {
    let tfl = tflite_mobilenet_ssd(seed);
    let module = tvmnp_frontends::tflite::from_tflite(&tfl).expect("ssd imports");
    Model {
        name: "mobilenet-ssd-quant".into(),
        dtype: DType::U8,
        framework: Framework::Tflite,
        module,
        input_name: "normalized_input".into(),
        input_shape: vec![1, 3, 64, 64],
        input_quant: Some(ssd_input_quant()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvmnp_relay::interp::Interpreter;

    #[test]
    fn yolo_runs_and_boxes_shape() {
        let m = yolo_model(41);
        let out = tvmnp_relay::interp::run_module(&m.module, &m.sample_inputs(42)).unwrap();
        // 18 channels over the merged 32x32 grid.
        assert_eq!(out.shape().dims(), &[1, 18, 32, 32]);
    }

    #[test]
    fn yolo_has_np_unsupported_upsample() {
        let m = yolo_model(41);
        let simplified = tvmnp_relay::passes::simplify(&m.module);
        let bad = tvmnp_neuropilot::support::first_unsupported(simplified.main());
        assert!(
            bad.is_some(),
            "yolo must have an NP gap (resize/batch_norm)"
        );
    }

    #[test]
    fn ssd_runs_with_two_outputs() {
        let m = mobilenet_ssd_model(43);
        let interp = Interpreter::new(&m.module);
        let v = interp.run(&m.sample_inputs(44)).unwrap();
        match v {
            tvmnp_relay::interp::Value::Tuple(parts) => {
                assert_eq!(parts.len(), 2);
                let loc = parts[0].tensor().unwrap();
                let conf = parts[1].tensor().unwrap();
                assert_eq!(loc.shape().dims(), &[1, 16384]);
                assert_eq!(loc.dtype(), DType::F32);
                assert!(
                    loc.as_f32().unwrap().iter().all(|&v| v > 0.0),
                    "exp output positive"
                );
                assert_eq!(conf.shape().dims(), &[1, 8192]);
                assert_eq!(conf.dtype(), DType::U8);
            }
            _ => panic!("SSD must produce (boxes, scores)"),
        }
    }

    #[test]
    fn ssd_np_only_blocked_by_exp() {
        let m = mobilenet_ssd_model(43);
        let simplified = tvmnp_relay::passes::simplify(&m.module);
        assert_eq!(
            tvmnp_neuropilot::support::first_unsupported(simplified.main()),
            Some("exp".to_string())
        );
    }

    #[test]
    fn ssd_is_quantized_end_to_end_in_backbone() {
        let m = mobilenet_ssd_model(43);
        let qnn_convs = tvmnp_relay::visit::topo_order(&m.module.main().body)
            .iter()
            .filter(|e| e.op().map(|o| o.name() == "qnn.conv2d").unwrap_or(false))
            .count();
        assert!(
            qnn_convs >= 6,
            "backbone + heads are qnn.conv2d (got {qnn_convs})"
        );
    }
}
