//! The evaluation model zoo of paper §6 (Table 1, Fig. 6).
//!
//! | model               | data type |
//! |---------------------|-----------|
//! | densenet            | float32   |
//! | inception resnet v2 | float32   |
//! | inception v3        | float32   |
//! | inception v4        | float32   |
//! | mobilenet v1        | float32   |
//! | mobilenet v2        | float32   |
//! | nasnet              | float32   |
//! | inception v3 quant  | int8      |
//! | mobilenet v1 quant  | int8      |
//! | mobilenet v2 quant  | int8      |
//!
//! Architecture signatures are preserved at reduced width/resolution:
//! mobilenets use depthwise-separable blocks + ReLU6; the inception family
//! uses multi-branch concat modules (v3/v4 exported with BN folded, as
//! their deployment artifacts are); inception-resnet-v2 and densenet keep
//! *unfused* `nn.batch_norm` (which NeuroPilot cannot ingest — their
//! NP-only bars are the missing ones in Fig. 6); nasnet's separable cells
//! reduce with a `mean` op (also unsupported). Quantized variants run
//! int8 `qnn.*` chains end to end.

use crate::{Framework, Model};
use tvmnp_relay::builder::*;
use tvmnp_relay::expr::{call, constant, var, Expr, Function, Module};
use tvmnp_relay::{
    ClipAttrs, Conv2dAttrs, DequantizeAttrs, OpKind, Pool2dAttrs, QnnAddAttrs, QnnConv2dAttrs,
    QnnDenseAttrs, TensorType,
};
use tvmnp_tensor::rng::TensorRng;
use tvmnp_tensor::{DType, QuantParams};

const INPUT: [usize; 4] = [1, 3, 64, 64];

fn float_model(name: &str, module: Module) -> Model {
    Model {
        name: name.into(),
        dtype: DType::F32,
        framework: Framework::Relay,
        module,
        input_name: "input".into(),
        input_shape: INPUT.to_vec(),
        input_quant: None,
    }
}

/// Builder state for float nets.
struct Net {
    rng: TensorRng,
    cur: Expr,
    c: usize,
}

impl Net {
    fn new(seed: u64) -> Self {
        let input = var("input", TensorType::f32(INPUT));
        Net {
            rng: TensorRng::new(seed),
            cur: input,
            c: 3,
        }
    }

    fn conv(&mut self, out_c: usize, k: usize, stride: usize, with_relu: bool) -> &mut Self {
        let pad = k / 2;
        let w = self.rng.kaiming_f32([out_c, self.c, k, k], self.c * k * k);
        let b = self.rng.uniform_f32([out_c], -0.05, 0.05);
        let attrs = Conv2dAttrs {
            strides: (stride, stride),
            padding: (pad, pad, pad, pad),
            ..Default::default()
        };
        self.cur = conv2d_bias(self.cur.clone(), w, b, attrs);
        if with_relu {
            self.cur = relu(self.cur.clone());
        }
        self.c = out_c;
        self
    }

    fn conv_bn_relu(&mut self, out_c: usize, k: usize, stride: usize) -> &mut Self {
        let pad = k / 2;
        let w = self.rng.kaiming_f32([out_c, self.c, k, k], self.c * k * k);
        let attrs = Conv2dAttrs {
            strides: (stride, stride),
            padding: (pad, pad, pad, pad),
            ..Default::default()
        };
        self.cur = conv2d(self.cur.clone(), w, attrs);
        self.cur = batch_norm(
            self.cur.clone(),
            self.rng.uniform_f32([out_c], 0.9, 1.1),
            self.rng.uniform_f32([out_c], -0.1, 0.1),
            self.rng.uniform_f32([out_c], -0.1, 0.1),
            self.rng.uniform_f32([out_c], 0.9, 1.1),
            1e-5,
        );
        self.cur = relu(self.cur.clone());
        self.c = out_c;
        self
    }

    fn depthwise(&mut self, k: usize, stride: usize) -> &mut Self {
        let pad = k / 2;
        let w = self.rng.kaiming_f32([self.c, 1, k, k], k * k);
        let attrs = Conv2dAttrs {
            strides: (stride, stride),
            padding: (pad, pad, pad, pad),
            dilation: (1, 1),
            groups: self.c,
        };
        self.cur = conv2d(self.cur.clone(), w, attrs);
        self
    }

    fn relu6(&mut self) -> &mut Self {
        self.cur = call(
            OpKind::Clip(ClipAttrs { min: 0.0, max: 6.0 }),
            vec![self.cur.clone()],
        );
        self
    }

    fn head(&mut self, classes: usize) -> Module {
        self.cur = global_avg_pool2d(self.cur.clone());
        self.cur = batch_flatten(self.cur.clone());
        let w = self.rng.kaiming_f32([classes, self.c], self.c);
        self.cur = softmax(dense(self.cur.clone(), w));
        let input = find_input(&self.cur);
        Module::from_main(Function::new(vec![input], self.cur.clone()))
    }
}

fn find_input(e: &Expr) -> Expr {
    let mut input = None;
    tvmnp_relay::visit::post_order(e, |n| {
        if matches!(n.kind, tvmnp_relay::ExprKind::Var(_)) {
            input = Some(n.clone());
        }
    });
    input.expect("net has an input var")
}

/// MobileNet v1: conv stem + depthwise-separable blocks + GAP head.
pub fn mobilenet_v1(seed: u64) -> Model {
    let mut n = Net::new(seed);
    n.conv(32, 3, 2, false).relu6();
    for &(c, s) in &[(64usize, 1usize), (64, 2), (128, 1), (128, 2)] {
        n.depthwise(3, s).relu6();
        n.conv(c, 1, 1, false).relu6();
    }
    float_model("mobilenet v1", n.head(10))
}

/// MobileNet v2: inverted residual bottlenecks (expand → depthwise →
/// linear project, with skip adds on stride-1 blocks).
pub fn mobilenet_v2(seed: u64) -> Model {
    let mut n = Net::new(seed);
    n.conv(32, 3, 2, false).relu6();
    for &(c, s) in &[(32usize, 1usize), (64, 2), (64, 1)] {
        let block_in = n.cur.clone();
        let in_c = n.c;
        n.conv(in_c * 4, 1, 1, false).relu6(); // expand
        n.depthwise(3, s).relu6();
        n.conv(c, 1, 1, false); // linear projection
        if s == 1 && in_c == c {
            n.cur = add(n.cur.clone(), block_in);
        }
    }
    float_model("mobilenet v2", n.head(10))
}

/// One inception-A-style module: four branches joined by channel concat.
fn inception_module(n: &mut Net, b1: usize, b3: usize, b5: usize, pool_proj: usize) {
    let input = n.cur.clone();
    let in_c = n.c;
    // 1x1 branch
    n.cur = input.clone();
    n.c = in_c;
    n.conv(b1, 1, 1, true);
    let br1 = n.cur.clone();
    // 3x3 branch
    n.cur = input.clone();
    n.c = in_c;
    n.conv(b3, 1, 1, true).conv(b3, 3, 1, true);
    let br3 = n.cur.clone();
    // double 3x3 ("5x5 factorized") branch
    n.cur = input.clone();
    n.c = in_c;
    n.conv(b5, 1, 1, true)
        .conv(b5, 3, 1, true)
        .conv(b5, 3, 1, true);
    let br5 = n.cur.clone();
    // pool projection branch
    let pooled = avg_pool2d(
        input,
        Pool2dAttrs {
            kernel: (3, 3),
            strides: (1, 1),
            padding: (1, 1, 1, 1),
            count_include_pad: false,
        },
    );
    n.cur = pooled;
    n.c = in_c;
    n.conv(pool_proj, 1, 1, true);
    let brp = n.cur.clone();

    n.cur = concatenate(vec![br1, br3, br5, brp], 1);
    n.c = b1 + b3 + b5 + pool_proj;
}

/// Inception v3 (BN folded at export): stem + two inception modules.
pub fn inception_v3(seed: u64) -> Model {
    let mut n = Net::new(seed);
    n.conv(32, 3, 2, true).conv(64, 3, 1, true);
    inception_module(&mut n, 32, 32, 32, 32);
    inception_module(&mut n, 32, 48, 32, 32);
    float_model("inception v3", n.head(10))
}

/// Inception v4: deeper stem and three modules.
pub fn inception_v4(seed: u64) -> Model {
    let mut n = Net::new(seed);
    n.conv(32, 3, 2, true)
        .conv(32, 3, 1, true)
        .conv(64, 3, 1, true);
    inception_module(&mut n, 32, 32, 32, 32);
    inception_module(&mut n, 32, 48, 32, 32);
    inception_module(&mut n, 48, 48, 32, 32);
    float_model("inception v4", n.head(10))
}

/// Inception-ResNet v2: BN stem + residual inception blocks with scaled
/// (`multiply`) residuals. Keeps unfused BN → NP-only bars missing.
pub fn inception_resnet_v2(seed: u64) -> Model {
    let mut n = Net::new(seed);
    n.conv_bn_relu(64, 3, 2);
    for _ in 0..2 {
        let block_in = n.cur.clone();
        let in_c = n.c;
        // two-branch residual function
        n.conv(32, 1, 1, true);
        let br1 = n.cur.clone();
        n.cur = block_in.clone();
        n.c = in_c;
        n.conv(32, 1, 1, true).conv(32, 3, 1, true);
        let br2 = n.cur.clone();
        n.cur = concatenate(vec![br1, br2], 1);
        n.c = 64;
        n.conv(in_c, 1, 1, false);
        // residual scaling by 0.17 as in the paper's reference net
        let scale = constant(tvmnp_tensor::Tensor::scalar_f32(0.17));
        n.cur = relu(add(multiply(n.cur.clone(), scale), block_in));
        n.c = in_c;
    }
    float_model("inception resnet v2", n.head(10))
}

/// DenseNet: BN-ReLU-conv dense blocks with concatenative connectivity.
pub fn densenet(seed: u64) -> Model {
    let mut n = Net::new(seed);
    n.conv(32, 3, 2, true);
    let growth = 32;
    for _ in 0..4 {
        let features = n.cur.clone();
        let in_c = n.c;
        n.conv_bn_relu(growth, 3, 1);
        let new = n.cur.clone();
        n.cur = concatenate(vec![features, new], 1);
        n.c = in_c + growth;
    }
    float_model("densenet", n.head(10))
}

/// NASNet: separable-conv cells, branch adds, and a `mean` reduction
/// (NP-unsupported) instead of global average pooling.
pub fn nasnet(seed: u64) -> Model {
    let mut n = Net::new(seed);
    n.conv(48, 3, 2, true);
    for _ in 0..2 {
        let cell_in = n.cur.clone();
        let in_c = n.c;
        // branch A: separable 5x5 (approximated 3x3 dw + pw)
        n.depthwise(3, 1);
        n.conv(in_c, 1, 1, true);
        let a = n.cur.clone();
        // branch B: avg pool
        let b = avg_pool2d(
            cell_in.clone(),
            Pool2dAttrs {
                kernel: (3, 3),
                strides: (1, 1),
                padding: (1, 1, 1, 1),
                count_include_pad: false,
            },
        );
        n.cur = add(a, b);
        n.c = in_c;
    }
    // mean over spatial dims (TF-slim style reduction)
    let reduced = mean(n.cur.clone(), vec![2, 3]);
    let w = n.rng.kaiming_f32([10, n.c], n.c);
    let out = softmax(dense(reduced, w));
    let input = find_input(&out);
    float_model("nasnet", Module::from_main(Function::new(vec![input], out)))
}

// ---------------------------------------------------------------------
// Quantized variants (Table 1's int8 rows)
// ---------------------------------------------------------------------

/// Builder state for int8 `qnn.*` chains.
struct QNet {
    rng: TensorRng,
    cur: Expr,
    c: usize,
    q: QuantParams,
}

impl QNet {
    fn new(seed: u64) -> Self {
        let q = QuantParams::new(0.05, 128);
        let input = var("input", TensorType::new(INPUT, DType::U8));
        QNet {
            rng: TensorRng::new(seed),
            cur: input,
            c: 3,
            q,
        }
    }

    fn qconv(
        &mut self,
        out_c: usize,
        k: usize,
        stride: usize,
        groups: usize,
        relu6: bool,
    ) -> &mut Self {
        let pad = k / 2;
        let qw = QuantParams::new(0.02, 128);
        let w = self
            .rng
            .uniform_quantized([out_c, self.c / groups, k, k], DType::U8, qw);
        let attrs = QnnConv2dAttrs {
            conv: Conv2dAttrs {
                strides: (stride, stride),
                padding: (pad, pad, pad, pad),
                dilation: (1, 1),
                groups,
            },
            input_q: self.q,
            weight_q: qw,
            output_q: self.q,
            out_dtype: DType::U8,
        };
        self.cur = call(
            OpKind::QnnConv2d(attrs),
            vec![self.cur.clone(), constant(w)],
        );
        if relu6 {
            self.cur = call(
                OpKind::Clip(ClipAttrs { min: 0.0, max: 6.0 }),
                vec![self.cur.clone()],
            );
        }
        self.c = out_c;
        self
    }

    fn qadd_residual(&mut self, other: Expr) -> &mut Self {
        let attrs = QnnAddAttrs {
            lhs_q: self.q,
            rhs_q: self.q,
            output_q: self.q,
            out_dtype: DType::U8,
        };
        self.cur = call(OpKind::QnnAdd(attrs), vec![self.cur.clone(), other]);
        self
    }

    fn head(&mut self, classes: usize) -> Module {
        self.cur = global_avg_pool2d(self.cur.clone());
        self.cur = batch_flatten(self.cur.clone());
        let qw = QuantParams::new(0.02, 128);
        let w = self.rng.uniform_quantized([classes, self.c], DType::U8, qw);
        let attrs = QnnDenseAttrs {
            input_q: self.q,
            weight_q: qw,
            output_q: self.q,
            out_dtype: DType::U8,
        };
        self.cur = call(OpKind::QnnDense(attrs), vec![self.cur.clone(), constant(w)]);
        self.cur = call(
            OpKind::QnnDequantize(DequantizeAttrs { input: self.q }),
            vec![self.cur.clone()],
        );
        self.cur = softmax(self.cur.clone());
        let input = find_input(&self.cur);
        Module::from_main(Function::new(vec![input], self.cur.clone()))
    }
}

fn quant_model(name: &str, module: Module, q: QuantParams) -> Model {
    Model {
        name: name.into(),
        dtype: DType::U8,
        framework: Framework::Relay,
        module,
        input_name: "input".into(),
        input_shape: INPUT.to_vec(),
        input_quant: Some(q),
    }
}

/// Quantized MobileNet v1.
pub fn mobilenet_v1_quant(seed: u64) -> Model {
    let mut n = QNet::new(seed);
    let q = n.q;
    n.qconv(32, 3, 2, 1, true);
    for &(c, s) in &[(64usize, 1usize), (64, 2), (128, 1), (128, 2)] {
        let dw_c = n.c;
        n.qconv(dw_c, 3, s, dw_c, true); // depthwise
        n.qconv(c, 1, 1, 1, true); // pointwise
    }
    quant_model("mobilenet v1 quant", n.head(10), q)
}

/// Quantized MobileNet v2 (with quantized residual adds).
pub fn mobilenet_v2_quant(seed: u64) -> Model {
    let mut n = QNet::new(seed);
    let q = n.q;
    n.qconv(32, 3, 2, 1, true);
    for &(c, s) in &[(32usize, 1usize), (64, 2), (64, 1)] {
        let block_in = n.cur.clone();
        let in_c = n.c;
        n.qconv(in_c * 4, 1, 1, 1, true);
        let dw_c = n.c;
        n.qconv(dw_c, 3, s, dw_c, true);
        n.qconv(c, 1, 1, 1, false);
        if s == 1 && in_c == c {
            n.qadd_residual(block_in);
        }
    }
    quant_model("mobilenet v2 quant", n.head(10), q)
}

/// Quantized Inception v3 (branches concat at equal scales).
pub fn inception_v3_quant(seed: u64) -> Model {
    let mut n = QNet::new(seed);
    let q = n.q;
    n.qconv(32, 3, 2, 1, true).qconv(64, 3, 1, 1, true);
    // one quantized inception module
    let input = n.cur.clone();
    let in_c = n.c;
    n.qconv(32, 1, 1, 1, true);
    let br1 = n.cur.clone();
    n.cur = input.clone();
    n.c = in_c;
    n.qconv(32, 1, 1, 1, true).qconv(32, 3, 1, 1, true);
    let br3 = n.cur.clone();
    let attrs = tvmnp_relay::QnnConcatAttrs {
        axis: 1,
        input_qs: vec![q, q],
        output_q: q,
    };
    n.cur = call(OpKind::QnnConcatenate(attrs), vec![br1, br3]);
    n.c = 64;
    n.qconv(64, 3, 1, 1, true);
    quant_model("inception v3 quant", n.head(10), q)
}

/// The full Fig. 6 / Table 1 model list, in the paper's order, plus the
/// quantized variants §6 adds.
pub fn zoo(seed: u64) -> Vec<Model> {
    vec![
        densenet(seed),
        inception_resnet_v2(seed.wrapping_add(1)),
        inception_v3(seed.wrapping_add(2)),
        inception_v4(seed.wrapping_add(3)),
        mobilenet_v1(seed.wrapping_add(4)),
        mobilenet_v2(seed.wrapping_add(5)),
        nasnet(seed.wrapping_add(6)),
        inception_v3_quant(seed.wrapping_add(7)),
        mobilenet_v1_quant(seed.wrapping_add(8)),
        mobilenet_v2_quant(seed.wrapping_add(9)),
    ]
}

/// Table 1 rows: `(model, data type)`.
pub fn table1(seed: u64) -> Vec<(String, &'static str)> {
    zoo(seed)
        .into_iter()
        .map(|m| {
            let dt = if m.dtype == DType::F32 {
                "float32"
            } else {
                "int8"
            };
            (m.name, dt)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvmnp_neuropilot::support::first_unsupported;
    use tvmnp_relay::interp::run_module;
    use tvmnp_relay::passes::simplify;

    #[test]
    fn all_zoo_models_type_check_and_run() {
        for m in zoo(100) {
            let out = run_module(&m.module, &m.sample_inputs(1)).unwrap();
            assert_eq!(out.shape().dims(), &[1, 10], "{} head", m.name);
            let s: f32 = out.as_f32().unwrap().iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "{} softmax sums to {s}", m.name);
        }
    }

    #[test]
    fn np_support_split_matches_figure6() {
        // Missing NP-only bars: densenet, inception-resnet-v2, nasnet.
        for m in zoo(100) {
            let simplified = simplify(&m.module);
            let gap = first_unsupported(simplified.main());
            let expect_missing = matches!(
                m.name.as_str(),
                "densenet" | "inception resnet v2" | "nasnet"
            );
            assert_eq!(gap.is_some(), expect_missing, "{}: gap = {gap:?}", m.name);
        }
    }

    #[test]
    fn table1_lists_ten_models_with_dtypes() {
        let t = table1(100);
        assert_eq!(t.len(), 10);
        assert_eq!(t.iter().filter(|(_, d)| *d == "float32").count(), 7);
        assert_eq!(t.iter().filter(|(_, d)| *d == "int8").count(), 3);
        assert_eq!(t[0].0, "densenet");
    }

    #[test]
    fn quant_models_are_integer_dominant() {
        for m in [
            mobilenet_v1_quant(1),
            mobilenet_v2_quant(2),
            inception_v3_quant(3),
        ] {
            let qnn = tvmnp_relay::visit::topo_order(&m.module.main().body)
                .iter()
                .filter(|e| e.op().map(|o| o.is_qnn()).unwrap_or(false))
                .count();
            assert!(qnn >= 5, "{} has only {qnn} qnn ops", m.name);
        }
    }

    #[test]
    fn v4_heavier_than_v3() {
        let v3 = inception_v3(5);
        let v4 = inception_v4(5);
        assert!(v4.module.main().num_calls() > v3.module.main().num_calls());
    }

    #[test]
    fn mobilenet_v2_has_residual_add() {
        let m = mobilenet_v2(5);
        assert!(tvmnp_relay::visit::topo_order(&m.module.main().body)
            .iter()
            .any(|e| e.op().map(|o| o.name() == "add").unwrap_or(false)));
    }
}
