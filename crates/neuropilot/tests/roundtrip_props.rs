//! Property tests: Relay→Neuron conversion and planned execution preserve
//! semantics on randomly generated NP-supported graphs, and plans always
//! satisfy their structural invariants.

use proptest::prelude::*;
use std::collections::HashMap;
use tvmnp_hwsim::CostModel;
use tvmnp_neuropilot::{convert_function, plan_op_level, CompiledNetwork, Planner, TargetPolicy};
use tvmnp_relay::builder;
use tvmnp_relay::expr::{call, var, Expr, Function, Module};
use tvmnp_relay::interp::run_module;
use tvmnp_relay::{Conv2dAttrs, OpKind, TensorType};
use tvmnp_tensor::rng::TensorRng;
use tvmnp_tensor::Tensor;

/// Random graph over the NP-supported float op set.
fn random_supported_graph(choices: &[u8], seed: u64) -> (Function, Tensor) {
    let mut rng = TensorRng::new(seed);
    let x = var("x", TensorType::f32([1, 4, 8, 8]));
    let mut nodes: Vec<Expr> = vec![x.clone()];
    for (i, &c) in choices.iter().enumerate() {
        let pick = |k: usize| nodes[(c as usize + k * 5 + i) % nodes.len()].clone();
        let new = match c % 7 {
            0 => builder::relu(pick(0)),
            1 => builder::sigmoid(pick(0)),
            2 => call(OpKind::Tanh, vec![pick(0)]),
            3 => builder::add(pick(0), pick(1)),
            4 => builder::multiply(pick(0), pick(1)),
            5 => builder::conv2d(
                pick(0),
                rng.uniform_f32([4, 4, 3, 3], -0.3, 0.3),
                Conv2dAttrs::same(1),
            ),
            _ => builder::max_pool2d(
                pick(0),
                tvmnp_relay::Pool2dAttrs {
                    kernel: (3, 3),
                    strides: (1, 1),
                    padding: (1, 1, 1, 1),
                    count_include_pad: false,
                },
            ),
        };
        nodes.push(new);
    }
    let body = nodes.last().unwrap().clone();
    let input = rng.uniform_f32([1, 4, 8, 8], -1.0, 1.0);
    (Function::new(vec![x], body), input)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conversion + any policy's planned execution is bit-identical to the
    /// Relay interpreter.
    #[test]
    fn conversion_roundtrip_bit_exact(
        choices in prop::collection::vec(0u8..=255, 1..16),
        seed in 0u64..10_000,
        policy_pick in 0usize..4,
    ) {
        let (f, input) = random_supported_graph(&choices, seed);
        let module = Module::from_main(Function::new(f.params.clone(), f.body.clone()));
        let mut ins = HashMap::new();
        ins.insert("x".to_string(), input.clone());
        let reference = run_module(&module, &ins).unwrap();

        let graph = convert_function(&f).unwrap();
        let policy = TargetPolicy::ALL[policy_pick];
        let net = CompiledNetwork::compile(graph, policy, CostModel::default()).unwrap();
        let (outs, t) = net.execute(&[input]).unwrap();
        prop_assert!(outs[0].bit_eq(&reference), "policy {policy} diverged");
        prop_assert!(t > 0.0);
    }

    /// Plan invariants: placements cover every op exactly once, segments
    /// partition the op sequence in order, and crossings reference real
    /// tensors.
    #[test]
    fn plan_structural_invariants(
        choices in prop::collection::vec(0u8..=255, 1..16),
        seed in 0u64..10_000,
        policy_pick in 0usize..4,
    ) {
        let (f, _) = random_supported_graph(&choices, seed);
        let graph = convert_function(&f).unwrap();
        let policy = TargetPolicy::ALL[policy_pick];
        let plan = Planner::plan(&graph, policy).unwrap();
        prop_assert_eq!(plan.placements.len(), graph.ops.len());
        let mut covered = vec![false; graph.ops.len()];
        let mut expected_next = 0usize;
        for seg in &plan.segments {
            for &i in &seg.op_indices {
                prop_assert_eq!(i, expected_next, "segments must be in order");
                expected_next += 1;
                prop_assert!(!covered[i]);
                covered[i] = true;
                prop_assert_eq!(plan.placements[i].device, seg.device);
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
        for &(tid, bytes) in &plan.crossings {
            prop_assert!(tid < graph.tensors.len());
            prop_assert_eq!(bytes, graph.tensors[tid].size_bytes());
        }
    }

    /// The op-level DP never plans worse than the fixed CPU/APU policies
    /// under the same cost model.
    #[test]
    fn op_level_dominates_fixed_policies(
        choices in prop::collection::vec(0u8..=255, 1..12),
        seed in 0u64..10_000,
    ) {
        let (f, _) = random_supported_graph(&choices, seed);
        let graph = convert_function(&f).unwrap();
        let cost = CostModel::default();
        let op_plan = plan_op_level(&graph, &cost).unwrap();
        let t_op = CompiledNetwork::from_plan(graph.clone(), op_plan, cost.clone())
            .estimate_time_us();
        for policy in [TargetPolicy::CpuOnly, TargetPolicy::ApuPrefer, TargetPolicy::CpuApu] {
            let fixed = Planner::plan(&graph, policy).unwrap();
            let t_fixed =
                CompiledNetwork::from_plan(graph.clone(), fixed, cost.clone()).estimate_time_us();
            prop_assert!(
                t_op <= t_fixed * 1.001,
                "op-level {t_op:.1} vs {policy} {t_fixed:.1}"
            );
        }
    }

    /// Quant propagation totality: converting any quantized chain leaves no
    /// quantized tensor without parameters (validated inside convert).
    #[test]
    fn quantized_chains_validate(depth in 1usize..6, seed in 0u64..10_000) {
        use tvmnp_relay::{QnnConv2dAttrs, QuantizeAttrs, DequantizeAttrs};
        use tvmnp_tensor::{DType, QuantParams};
        let mut rng = TensorRng::new(seed);
        let qp = QuantParams::new(0.03, 128);
        let qw = QuantParams::new(0.01, 128);
        let x = var("x", TensorType::f32([1, 4, 8, 8]));
        let mut e = call(
            OpKind::QnnQuantize(QuantizeAttrs { out: qp, out_dtype: DType::U8 }),
            vec![x.clone()],
        );
        for _ in 0..depth {
            let w = rng.uniform_quantized([4, 4, 3, 3], DType::U8, qw);
            e = call(
                OpKind::QnnConv2d(QnnConv2dAttrs {
                    conv: Conv2dAttrs::same(1),
                    input_q: qp,
                    weight_q: qw,
                    output_q: qp,
                    out_dtype: DType::U8,
                }),
                vec![e, tvmnp_relay::expr::constant(w)],
            );
            // A quant-transparent op between convs exercises propagation.
            e = builder::max_pool2d(
                e,
                tvmnp_relay::Pool2dAttrs {
                    kernel: (3, 3),
                    strides: (1, 1),
                    padding: (1, 1, 1, 1),
                    count_include_pad: false,
                },
            );
        }
        e = call(OpKind::QnnDequantize(DequantizeAttrs { input: qp }), vec![e]);
        let f = Function::new(vec![x], e);
        let graph = convert_function(&f).unwrap();
        for t in &graph.tensors {
            if t.dtype.is_quantized() {
                prop_assert!(t.quant.is_some(), "tensor '{}' lost its params", t.name);
            }
        }
    }
}
