//! The Execution Planner (paper §2.1): assigns each Neuron op to a
//! back-end target under a target policy, and derives the segment/crossing
//! structure the runtime charges time for.

use crate::error::NeuronError;
use crate::nir::{work_item, NeuronGraph};
use crate::support::device_supports;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use tvmnp_hwsim::DeviceKind;

/// Back-end target selection policy — the `nir_targets=[...]` argument of
/// the paper's Listing 6, and the axis of its seven permutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetPolicy {
    /// Everything on the mobile CPU (vendor kernels).
    CpuOnly,
    /// Prefer the GPU; ops it cannot run fall back to the slow reference
    /// CPU path.
    GpuPrefer,
    /// Prefer the APU; ops it cannot run fall back to the slow reference
    /// CPU path (NNAPI-style reference fallback).
    ApuPrefer,
    /// Use CPU and APU together: MAC-heavy ops *large enough to amortize
    /// the APU driver round-trip* go to the APU; everything else runs on
    /// the tuned vendor CPU kernels. This is the paper's "CPU+APU"
    /// permutation — a simple op-size heuristic, not an optimum
    /// (operation-level optimal scheduling is the paper's future work).
    /// The size awareness is what lets CPU+APU beat APU-prefer on
    /// fragmented models (Fig. 4's anti-spoofing / object detection) while
    /// losing to APU-prefer on fully-APU-capable ones (emotion).
    CpuApu,
}

impl TargetPolicy {
    /// All policies the experiments sweep.
    pub const ALL: [TargetPolicy; 4] = [
        TargetPolicy::CpuOnly,
        TargetPolicy::GpuPrefer,
        TargetPolicy::ApuPrefer,
        TargetPolicy::CpuApu,
    ];

    /// Short label used in tables/figures.
    pub fn label(self) -> &'static str {
        match self {
            TargetPolicy::CpuOnly => "cpu",
            TargetPolicy::GpuPrefer => "gpu",
            TargetPolicy::ApuPrefer => "apu",
            TargetPolicy::CpuApu => "cpu+apu",
        }
    }
}

impl fmt::Display for TargetPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Minimum MAC count for which the CPU+APU planner considers a *float* op
/// worth the APU dispatch + transfer round trip (the Execution Planner's
/// op-size heuristic; see [`TargetPolicy::CpuApu`]).
pub const APU_OFFLOAD_MIN_MACS_F32: u64 = 2_000_000;

/// The int8 threshold is higher: the vendor CPU's int8 kernels are already
/// ~2x its float throughput, so the APU round trip amortizes later.
pub const APU_OFFLOAD_MIN_MACS_INT8: u64 = 6_000_000;

/// One op's placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Chosen device.
    pub device: DeviceKind,
    /// Whether this placement is a reference-implementation fallback (the
    /// preferred device could not run the op). Fallback kernels are far
    /// slower than the vendor-tuned ones.
    pub fallback: bool,
}

/// A maximal run of consecutive ops on one device — dispatched to the
/// driver as a unit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanSegment {
    /// Device executing the segment.
    pub device: DeviceKind,
    /// Indices into `NeuronGraph::ops`, consecutive.
    pub op_indices: Vec<usize>,
}

/// The planner's output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// Policy that produced the plan.
    pub policy: TargetPolicy,
    /// Per-op placement, parallel to `NeuronGraph::ops`.
    pub placements: Vec<Placement>,
    /// Device segments in execution order.
    pub segments: Vec<PlanSegment>,
    /// Data edges whose producer and consumer sit on different devices
    /// (each costs a transfer at runtime): `(tensor_id, bytes)`.
    pub crossings: Vec<(usize, usize)>,
}

impl ExecutionPlan {
    /// Distinct devices used.
    pub fn devices_used(&self) -> Vec<DeviceKind> {
        let mut out = Vec::new();
        for p in &self.placements {
            if !out.contains(&p.device) {
                out.push(p.device);
            }
        }
        out
    }

    /// Number of fallback-placed ops.
    pub fn fallback_ops(&self) -> usize {
        self.placements.iter().filter(|p| p.fallback).count()
    }
}

/// The Execution Planner.
pub struct Planner;

impl Planner {
    /// Plan `graph` under `policy`.
    pub fn plan(graph: &NeuronGraph, policy: TargetPolicy) -> Result<ExecutionPlan, NeuronError> {
        let mut placements = Vec::with_capacity(graph.ops.len());
        for op in &graph.ops {
            let placement = match policy {
                TargetPolicy::CpuOnly => Placement {
                    device: DeviceKind::Cpu,
                    fallback: false,
                },
                TargetPolicy::GpuPrefer => {
                    if device_supports(DeviceKind::Gpu, &op.kind) {
                        Placement {
                            device: DeviceKind::Gpu,
                            fallback: false,
                        }
                    } else {
                        Placement {
                            device: DeviceKind::Cpu,
                            fallback: true,
                        }
                    }
                }
                TargetPolicy::ApuPrefer => {
                    if device_supports(DeviceKind::Apu, &op.kind) {
                        Placement {
                            device: DeviceKind::Apu,
                            fallback: false,
                        }
                    } else {
                        Placement {
                            device: DeviceKind::Cpu,
                            fallback: true,
                        }
                    }
                }
                TargetPolicy::CpuApu => {
                    let w = work_item(graph, op);
                    let threshold = if w.int8 {
                        APU_OFFLOAD_MIN_MACS_INT8
                    } else {
                        APU_OFFLOAD_MIN_MACS_F32
                    };
                    let big_enough = op.kind.is_mac_heavy() && w.macs >= threshold;
                    if big_enough && device_supports(DeviceKind::Apu, &op.kind) {
                        Placement {
                            device: DeviceKind::Apu,
                            fallback: false,
                        }
                    } else {
                        Placement {
                            device: DeviceKind::Cpu,
                            fallback: false,
                        }
                    }
                }
            };
            if !device_supports(placement.device, &op.kind) {
                return Err(NeuronError::NoCapableDevice {
                    op: op.kind.name().to_string(),
                    policy: policy.label().to_string(),
                });
            }
            placements.push(placement);
        }

        // Segments: maximal consecutive same-device runs.
        let mut segments: Vec<PlanSegment> = Vec::new();
        for (i, p) in placements.iter().enumerate() {
            match segments.last_mut() {
                Some(seg) if seg.device == p.device => seg.op_indices.push(i),
                _ => segments.push(PlanSegment {
                    device: p.device,
                    op_indices: vec![i],
                }),
            }
        }

        // Crossings: producer/consumer device mismatches over tensor edges.
        let mut producer: HashMap<usize, usize> = HashMap::new(); // tensor -> op idx
        for (i, op) in graph.ops.iter().enumerate() {
            for &o in &op.outputs {
                producer.insert(o, i);
            }
        }
        let mut crossings = Vec::new();
        for (i, op) in graph.ops.iter().enumerate() {
            for &t in &op.inputs {
                if let Some(&pi) = producer.get(&t) {
                    if placements[pi].device != placements[i].device {
                        crossings.push((t, graph.tensors[t].size_bytes()));
                    }
                }
            }
        }
        // Host boundary: graph inputs consumed off-CPU, outputs produced
        // off-CPU (the host application lives on the CPU side).
        for &t in &graph.inputs {
            let consumed_off_cpu =
                graph.ops.iter().enumerate().any(|(i, op)| {
                    op.inputs.contains(&t) && placements[i].device != DeviceKind::Cpu
                });
            if consumed_off_cpu {
                crossings.push((t, graph.tensors[t].size_bytes()));
            }
        }
        for &t in &graph.outputs {
            if let Some(&pi) = producer.get(&t) {
                if placements[pi].device != DeviceKind::Cpu {
                    crossings.push((t, graph.tensors[t].size_bytes()));
                }
            }
        }

        Ok(ExecutionPlan {
            policy,
            placements,
            segments,
            crossings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nir::{NeuronOp, NeuronOpKind, NeuronTensor};
    use tvmnp_tensor::DType;

    fn act(name: &str) -> NeuronTensor {
        NeuronTensor {
            name: name.into(),
            shape: [1, 8, 4, 4].into(),
            dtype: DType::F32,
            quant: None,
            data: None,
        }
    }

    /// conv -> sigmoid -> conv graph.
    fn conv_sigmoid_conv() -> NeuronGraph {
        let mut g = NeuronGraph::default();
        let x = g.add_tensor(act("x"));
        let w1 = g.add_tensor(NeuronTensor {
            data: Some(tvmnp_tensor::Tensor::zeros_f32([8, 8, 1, 1])),
            ..act("w1")
        });
        let t1 = g.add_tensor(act("t1"));
        let t2 = g.add_tensor(act("t2"));
        let w2 = g.add_tensor(NeuronTensor {
            data: Some(tvmnp_tensor::Tensor::zeros_f32([8, 8, 1, 1])),
            ..act("w2")
        });
        let y = g.add_tensor(act("y"));
        g.inputs = vec![x];
        g.outputs = vec![y];
        let conv = NeuronOpKind::Conv2d {
            strides: (1, 1),
            padding: (0, 0, 0, 0),
            dilation: (1, 1),
            groups: 1,
        };
        g.add_op(NeuronOp {
            kind: conv.clone(),
            inputs: vec![x, w1],
            outputs: vec![t1],
        });
        g.add_op(NeuronOp {
            kind: NeuronOpKind::Sigmoid,
            inputs: vec![t1],
            outputs: vec![t2],
        });
        g.add_op(NeuronOp {
            kind: conv,
            inputs: vec![t2, w2],
            outputs: vec![y],
        });
        g
    }

    #[test]
    fn cpu_only_single_segment() {
        let g = conv_sigmoid_conv();
        let p = Planner::plan(&g, TargetPolicy::CpuOnly).unwrap();
        assert_eq!(p.segments.len(), 1);
        assert!(p.crossings.is_empty());
        assert_eq!(p.fallback_ops(), 0);
    }

    #[test]
    fn apu_prefer_falls_back_on_sigmoid() {
        let g = conv_sigmoid_conv();
        let p = Planner::plan(&g, TargetPolicy::ApuPrefer).unwrap();
        assert_eq!(p.placements[0].device, DeviceKind::Apu);
        assert_eq!(p.placements[1].device, DeviceKind::Cpu);
        assert!(p.placements[1].fallback);
        assert_eq!(p.placements[2].device, DeviceKind::Apu);
        assert_eq!(p.segments.len(), 3);
        // t1 crosses APU->CPU, t2 crosses CPU->APU, x host->APU, y APU->host.
        assert_eq!(p.crossings.len(), 4);
    }

    #[test]
    fn cpu_apu_keeps_small_convs_on_cpu() {
        // The test graph's convs are tiny (8 ch over 4x4): below the
        // APU_OFFLOAD_MIN_MACS threshold, everything stays on the CPU.
        let g = conv_sigmoid_conv();
        let p = Planner::plan(&g, TargetPolicy::CpuApu).unwrap();
        assert!(p.placements.iter().all(|pl| pl.device == DeviceKind::Cpu));
        assert_eq!(p.fallback_ops(), 0);
        assert_eq!(p.segments.len(), 1);
    }

    #[test]
    fn cpu_apu_sends_large_convs_to_apu() {
        let mut g = NeuronGraph::default();
        let big = |name: &str| NeuronTensor {
            name: name.into(),
            shape: [1, 64, 64, 64].into(),
            dtype: DType::F32,
            quant: None,
            data: None,
        };
        let x = g.add_tensor(big("x"));
        let w = g.add_tensor(NeuronTensor {
            data: Some(tvmnp_tensor::Tensor::zeros_f32([64, 64, 3, 3])),
            shape: [64, 64, 3, 3].into(),
            ..big("w")
        });
        let y = g.add_tensor(big("y"));
        let z = g.add_tensor(big("z"));
        g.inputs = vec![x];
        g.outputs = vec![z];
        g.add_op(NeuronOp {
            kind: NeuronOpKind::Conv2d {
                strides: (1, 1),
                padding: (1, 1, 1, 1),
                dilation: (1, 1),
                groups: 1,
            },
            inputs: vec![x, w],
            outputs: vec![y],
        });
        g.add_op(NeuronOp {
            kind: NeuronOpKind::Relu,
            inputs: vec![y],
            outputs: vec![z],
        });
        let p = Planner::plan(&g, TargetPolicy::CpuApu).unwrap();
        assert_eq!(
            p.placements[0].device,
            DeviceKind::Apu,
            "150 MMACs amortize the APU"
        );
        assert_eq!(p.placements[1].device, DeviceKind::Cpu);
        assert_eq!(p.fallback_ops(), 0);
    }

    #[test]
    fn fully_apu_capable_graph_is_one_apu_segment() {
        let mut g = NeuronGraph::default();
        let x = g.add_tensor(act("x"));
        let t = g.add_tensor(act("t"));
        let y = g.add_tensor(act("y"));
        g.inputs = vec![x];
        g.outputs = vec![y];
        g.add_op(NeuronOp {
            kind: NeuronOpKind::Relu,
            inputs: vec![x],
            outputs: vec![t],
        });
        g.add_op(NeuronOp {
            kind: NeuronOpKind::Softmax,
            inputs: vec![t],
            outputs: vec![y],
        });
        let p = Planner::plan(&g, TargetPolicy::ApuPrefer).unwrap();
        assert_eq!(p.segments.len(), 1);
        assert_eq!(p.segments[0].device, DeviceKind::Apu);
        // Only host-boundary crossings.
        assert_eq!(p.crossings.len(), 2);
    }

    #[test]
    fn policy_labels() {
        assert_eq!(TargetPolicy::CpuApu.label(), "cpu+apu");
        assert_eq!(TargetPolicy::ALL.len(), 4);
    }
}
