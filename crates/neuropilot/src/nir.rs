//! Neuron IR: the tensor-oriented graph NeuroPilot's compiler consumes.
//!
//! The representational contrast with Relay QNN is the point of paper
//! §3.3: in Relay, quantization parameters ride on `qnn.*` *operators*;
//! in Neuron IR **every tensor** carries its own `(scale, zero_point)`.
//! [`NeuronTensor::quant`] is therefore a first-class field here, and
//! [`NeuronOpKind`] has no quantization attributes at all — a quantized
//! convolution is just `Conv2d` whose operand tensors are quantized.

use serde::{Deserialize, Serialize};
use tvmnp_hwsim::{WorkItem, WorkKind};
use tvmnp_tensor::{DType, QuantParams, Shape, Tensor};

/// Index of a tensor within its [`NeuronGraph`].
pub type TensorId = usize;

/// One tensor slot of a Neuron network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NeuronTensor {
    /// Diagnostic name.
    pub name: String,
    /// Static shape.
    pub shape: Shape,
    /// Element type.
    pub dtype: DType,
    /// Per-tensor quantization parameters (the tensor-oriented scheme).
    pub quant: Option<QuantParams>,
    /// Constant payload (weights/bias); `None` for activations. Serialized
    /// with the graph so exported artifacts carry their weights (§4.5).
    pub data: Option<Tensor>,
}

impl NeuronTensor {
    /// Payload size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.shape.num_elements() * self.dtype.size_bytes()
    }

    /// Whether this slot is a baked-in constant.
    pub fn is_const(&self) -> bool {
        self.data.is_some()
    }
}

/// Operator vocabulary of Neuron IR.
///
/// Quantized and float variants share one opcode; the operand tensors'
/// dtypes/quant params select the arithmetic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NeuronOpKind {
    /// 2-D convolution.
    Conv2d {
        /// Stride (h, w).
        strides: (usize, usize),
        /// Padding (top, left, bottom, right).
        padding: (usize, usize, usize, usize),
        /// Dilation (h, w).
        dilation: (usize, usize),
        /// Feature groups.
        groups: usize,
    },
    /// Fully connected layer.
    FullyConnected,
    /// Per-channel bias add.
    BiasAdd,
    /// Max pooling.
    MaxPool2d {
        /// Window (h, w).
        kernel: (usize, usize),
        /// Stride (h, w).
        strides: (usize, usize),
        /// Padding (top, left, bottom, right).
        padding: (usize, usize, usize, usize),
    },
    /// Average pooling.
    AvgPool2d {
        /// Window (h, w).
        kernel: (usize, usize),
        /// Stride (h, w).
        strides: (usize, usize),
        /// Padding (top, left, bottom, right).
        padding: (usize, usize, usize, usize),
    },
    /// Global average pooling.
    GlobalAvgPool2d,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU.
    LeakyRelu {
        /// Negative slope.
        alpha: f32,
    },
    /// Clamp to `[min, max]`.
    Clip {
        /// Lower bound.
        min: f32,
        /// Upper bound.
        max: f32,
    },
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Softmax over the last axis.
    Softmax,
    /// Element-wise add.
    Add,
    /// Element-wise multiply.
    Mul,
    /// Element-wise maximum.
    Max,
    /// Static reshape.
    Reshape {
        /// Target shape.
        new_shape: Vec<usize>,
    },
    /// Axis permutation.
    Transpose {
        /// Permutation.
        axes: Vec<usize>,
    },
    /// Concatenation.
    Concat {
        /// Join axis.
        axis: usize,
    },
    /// Constant padding.
    Pad {
        /// Per-dim (before, after).
        pads: Vec<(usize, usize)>,
        /// Fill value (real domain).
        value: f32,
    },
    /// Collapse all but the batch dim.
    BatchFlatten,
    /// Float → quantized.
    Quantize,
    /// Quantized → float.
    Dequantize,
    /// Quantized rescale.
    Requantize,
}

impl NeuronOpKind {
    /// Stable opcode name for diagnostics and support matrices.
    pub fn name(&self) -> &'static str {
        match self {
            NeuronOpKind::Conv2d { .. } => "CONV_2D",
            NeuronOpKind::FullyConnected => "FULLY_CONNECTED",
            NeuronOpKind::BiasAdd => "BIAS_ADD",
            NeuronOpKind::MaxPool2d { .. } => "MAX_POOL_2D",
            NeuronOpKind::AvgPool2d { .. } => "AVERAGE_POOL_2D",
            NeuronOpKind::GlobalAvgPool2d => "GLOBAL_AVERAGE_POOL_2D",
            NeuronOpKind::Relu => "RELU",
            NeuronOpKind::LeakyRelu { .. } => "LEAKY_RELU",
            NeuronOpKind::Clip { .. } => "CLIP",
            NeuronOpKind::Sigmoid => "LOGISTIC",
            NeuronOpKind::Tanh => "TANH",
            NeuronOpKind::Softmax => "SOFTMAX",
            NeuronOpKind::Add => "ADD",
            NeuronOpKind::Mul => "MUL",
            NeuronOpKind::Max => "MAXIMUM",
            NeuronOpKind::Reshape { .. } => "RESHAPE",
            NeuronOpKind::Transpose { .. } => "TRANSPOSE",
            NeuronOpKind::Concat { .. } => "CONCATENATION",
            NeuronOpKind::Pad { .. } => "PAD",
            NeuronOpKind::BatchFlatten => "FLATTEN",
            NeuronOpKind::Quantize => "QUANTIZE",
            NeuronOpKind::Dequantize => "DEQUANTIZE",
            NeuronOpKind::Requantize => "REQUANTIZE",
        }
    }

    /// Whether this op is MAC-dominated (for the planner's cost heuristic).
    pub fn is_mac_heavy(&self) -> bool {
        matches!(
            self,
            NeuronOpKind::Conv2d { .. } | NeuronOpKind::FullyConnected
        )
    }
}

/// One operation node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NeuronOp {
    /// Opcode + attributes.
    pub kind: NeuronOpKind,
    /// Input tensor ids, in operator order.
    pub inputs: Vec<TensorId>,
    /// Output tensor ids.
    pub outputs: Vec<TensorId>,
}

/// A complete Neuron network: tensors + ops in topological order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NeuronGraph {
    /// All tensor slots.
    pub tensors: Vec<NeuronTensor>,
    /// Ops in execution order.
    pub ops: Vec<NeuronOp>,
    /// Graph input tensor ids (activations fed by the caller).
    pub inputs: Vec<TensorId>,
    /// Graph output tensor ids.
    pub outputs: Vec<TensorId>,
}

impl NeuronGraph {
    /// Add a tensor slot, returning its id.
    pub fn add_tensor(&mut self, t: NeuronTensor) -> TensorId {
        self.tensors.push(t);
        self.tensors.len() - 1
    }

    /// Add an op node.
    pub fn add_op(&mut self, op: NeuronOp) {
        self.ops.push(op);
    }

    /// Number of operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Validate structural invariants: ids in range, ops topologically
    /// ordered (an op's activation inputs are graph inputs, constants, or
    /// outputs of earlier ops), every quantized tensor carries params.
    pub fn validate(&self) -> Result<(), String> {
        let mut defined: Vec<bool> = vec![false; self.tensors.len()];
        for &i in &self.inputs {
            if i >= self.tensors.len() {
                return Err(format!("input id {i} out of range"));
            }
            defined[i] = true;
        }
        for (i, t) in self.tensors.iter().enumerate() {
            if t.is_const() {
                defined[i] = true;
            }
            if t.dtype.is_quantized() && t.quant.is_none() {
                return Err(format!(
                    "tensor {i} ('{}') is {} but carries no quantization parameters",
                    t.name, t.dtype
                ));
            }
        }
        for (k, op) in self.ops.iter().enumerate() {
            for &i in &op.inputs {
                if i >= self.tensors.len() {
                    return Err(format!("op {k} input id {i} out of range"));
                }
                if !defined[i] {
                    return Err(format!(
                        "op {k} ({}) reads tensor {i} before it is defined",
                        op.kind.name()
                    ));
                }
            }
            for &o in &op.outputs {
                if o >= self.tensors.len() {
                    return Err(format!("op {k} output id {o} out of range"));
                }
                defined[o] = true;
            }
        }
        for &o in &self.outputs {
            if o >= self.tensors.len() || !defined[o] {
                return Err(format!("graph output {o} is never defined"));
            }
        }
        Ok(())
    }
}

/// Estimate the device-neutral work of one Neuron op.
pub fn work_item(graph: &NeuronGraph, op: &NeuronOp) -> WorkItem {
    let out = &graph.tensors[op.outputs[0]];
    let out_elems = out.shape.num_elements() as u64;
    let bytes_in: u64 = op
        .inputs
        .iter()
        .map(|&i| graph.tensors[i].size_bytes() as u64)
        .sum();
    let bytes_out = out.size_bytes() as u64;
    let int8 = out.dtype.is_quantized()
        || op
            .inputs
            .first()
            .map(|&i| graph.tensors[i].dtype.is_quantized())
            .unwrap_or(false);
    let (macs, kind) = match &op.kind {
        NeuronOpKind::Conv2d { groups, .. } => {
            let w = &graph.tensors[op.inputs[1]];
            let wd = w.shape.dims();
            // per output element: (C/groups) * kh * kw MACs.
            let per = (wd[1] * wd[2] * wd[3]) as u64;
            let _ = groups;
            (out_elems * per, WorkKind::MacHeavy)
        }
        NeuronOpKind::FullyConnected => {
            let w = &graph.tensors[op.inputs[1]];
            (out_elems * w.shape.dims()[1] as u64, WorkKind::MacHeavy)
        }
        NeuronOpKind::MaxPool2d { kernel, .. } | NeuronOpKind::AvgPool2d { kernel, .. } => (
            out_elems * (kernel.0 * kernel.1) as u64,
            WorkKind::Reduction,
        ),
        NeuronOpKind::GlobalAvgPool2d => {
            let x = &graph.tensors[op.inputs[0]];
            (x.shape.num_elements() as u64, WorkKind::Reduction)
        }
        NeuronOpKind::Softmax => (4 * out_elems, WorkKind::Reduction),
        NeuronOpKind::Reshape { .. }
        | NeuronOpKind::Transpose { .. }
        | NeuronOpKind::Concat { .. }
        | NeuronOpKind::Pad { .. }
        | NeuronOpKind::BatchFlatten => (0, WorkKind::DataMovement),
        _ => (out_elems, WorkKind::Elementwise),
    };
    WorkItem {
        macs,
        bytes_in,
        bytes_out,
        int8,
        kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(name: &str, shape: [usize; 2]) -> NeuronTensor {
        NeuronTensor {
            name: name.into(),
            shape: shape.into(),
            dtype: DType::F32,
            quant: None,
            data: None,
        }
    }

    #[test]
    fn build_and_validate() {
        let mut g = NeuronGraph::default();
        let x = g.add_tensor(act("x", [1, 4]));
        let y = g.add_tensor(act("y", [1, 4]));
        g.inputs = vec![x];
        g.outputs = vec![y];
        g.add_op(NeuronOp {
            kind: NeuronOpKind::Relu,
            inputs: vec![x],
            outputs: vec![y],
        });
        assert!(g.validate().is_ok());
        assert_eq!(g.num_ops(), 1);
    }

    #[test]
    fn use_before_def_detected() {
        let mut g = NeuronGraph::default();
        let x = g.add_tensor(act("x", [1, 4]));
        let y = g.add_tensor(act("y", [1, 4]));
        g.inputs = vec![];
        g.outputs = vec![y];
        g.add_op(NeuronOp {
            kind: NeuronOpKind::Relu,
            inputs: vec![x],
            outputs: vec![y],
        });
        assert!(g.validate().is_err());
    }

    #[test]
    fn quantized_tensor_requires_params() {
        let mut g = NeuronGraph::default();
        let x = g.add_tensor(NeuronTensor {
            name: "x".into(),
            shape: [1, 4].into(),
            dtype: DType::U8,
            quant: None,
            data: None,
        });
        g.inputs = vec![x];
        g.outputs = vec![x];
        assert!(
            g.validate().is_err(),
            "tensor-oriented IR demands per-tensor params"
        );
    }

    #[test]
    fn opcode_names() {
        assert_eq!(NeuronOpKind::Sigmoid.name(), "LOGISTIC");
        assert!(NeuronOpKind::FullyConnected.is_mac_heavy());
        assert!(!NeuronOpKind::Relu.is_mac_heavy());
    }
}
