//! # tvmnp-neuropilot
//!
//! The vendor-side stack of the reproduction: a NeuroPilot-style compiler
//! and runtime for the simulated MediaTek SoC.
//!
//! NeuroPilot's two core concepts (paper §2.1) are reproduced:
//!
//! * **Compiler** — a high-level, *tensor-oriented* IR ([`nir`]) plus the
//!   Relay→Neuron converter ([`convert`]): a post-order DFS over the Relay
//!   AST with `NodeEntry` bookkeeping and an `op_handler_dict` mapping each
//!   Relay op name to conversion logic (paper Listing 1), including the
//!   §3.3 QNN flow that turns Relay's operator-oriented quantization
//!   parameters into per-tensor parameters and propagates them through
//!   non-QNN ops. The **Execution Planner** ([`planner`]) then assigns
//!   each Neuron op to a back-end target (mobile CPU / GPU / APU).
//! * **Runtime** — [`runtime`] executes the planned network: numerically
//!   on the host kernels (bit-identical to the Relay interpreter) while
//!   charging simulated time on the `tvmnp-hwsim` cost model.
//!
//! [`support`] holds the op-coverage matrices. NeuroPilot supporting
//! *fewer* ops than TVM is what produces the missing NeuroPilot-only bars
//! in the paper's Figs. 4 and 6, and what makes the BYOC flow valuable.

pub mod convert;
pub mod error;
pub mod nir;
pub mod oplevel;
pub mod planner;
pub mod runtime;
pub mod support;

pub use convert::{convert_function, NodeEntry};
pub use error::NeuronError;
pub use nir::{NeuronGraph, NeuronOp, NeuronOpKind, NeuronTensor, TensorId};
pub use oplevel::plan_op_level;
pub use planner::{ExecutionPlan, Planner, TargetPolicy};
pub use runtime::{CompiledNetwork, CostEntry, ProfileEntry};
pub use support::{device_supports, neuron_supported, NeuronSupport};
