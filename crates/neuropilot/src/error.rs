//! Error type shared across the NeuroPilot stack.

use std::fmt;

/// Failures of Neuron conversion, planning or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum NeuronError {
    /// A Relay op has no entry in the op-handler dictionary — NeuroPilot
    /// does not support it. This is the error behind the paper's missing
    /// NeuroPilot-only bars.
    UnsupportedOp(String),
    /// An op is supported by NeuroPilot but by none of the devices the
    /// caller allowed.
    NoCapableDevice { op: String, policy: String },
    /// Structural problem in the incoming Relay function.
    Conversion(String),
    /// Numeric execution failure.
    Execution(String),
    /// A device fault (injected or real) survived every retry attempt.
    DeviceFault {
        /// Device name (`cpu` / `gpu` / `apu`).
        device: String,
        /// Dispatch attempts made before giving up.
        attempts: u32,
        /// Cause of the final fault, e.g. `device lost: apu driver gone`.
        cause: String,
    },
    /// The run's simulated-time budget was exhausted.
    DeadlineExceeded {
        /// Budget, simulated microseconds.
        budget_us: f64,
        /// Simulated time the run would have needed.
        needed_us: f64,
    },
}

impl fmt::Display for NeuronError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NeuronError::UnsupportedOp(op) => {
                write!(f, "NeuroPilot does not support operator '{op}'")
            }
            NeuronError::NoCapableDevice { op, policy } => {
                write!(f, "no device in policy {policy} can run '{op}'")
            }
            NeuronError::Conversion(m) => write!(f, "Neuron conversion error: {m}"),
            NeuronError::Execution(m) => write!(f, "Neuron execution error: {m}"),
            NeuronError::DeviceFault {
                device,
                attempts,
                cause,
            } => write!(
                f,
                "device fault on {device} after {attempts} attempt(s): {cause}"
            ),
            NeuronError::DeadlineExceeded {
                budget_us,
                needed_us,
            } => write!(
                f,
                "deadline exceeded: needed {needed_us:.1} us of a {budget_us:.1} us budget"
            ),
        }
    }
}

impl std::error::Error for NeuronError {}
