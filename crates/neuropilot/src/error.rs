//! Error type shared across the NeuroPilot stack.

use std::fmt;

/// Failures of Neuron conversion, planning or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum NeuronError {
    /// A Relay op has no entry in the op-handler dictionary — NeuroPilot
    /// does not support it. This is the error behind the paper's missing
    /// NeuroPilot-only bars.
    UnsupportedOp(String),
    /// An op is supported by NeuroPilot but by none of the devices the
    /// caller allowed.
    NoCapableDevice { op: String, policy: String },
    /// Structural problem in the incoming Relay function.
    Conversion(String),
    /// Numeric execution failure.
    Execution(String),
}

impl fmt::Display for NeuronError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NeuronError::UnsupportedOp(op) => {
                write!(f, "NeuroPilot does not support operator '{op}'")
            }
            NeuronError::NoCapableDevice { op, policy } => {
                write!(f, "no device in policy {policy} can run '{op}'")
            }
            NeuronError::Conversion(m) => write!(f, "Neuron conversion error: {m}"),
            NeuronError::Execution(m) => write!(f, "Neuron execution error: {m}"),
        }
    }
}

impl std::error::Error for NeuronError {}
