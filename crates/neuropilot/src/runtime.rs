//! The Neuron runtime: executes a planned network.
//!
//! Numeric results are computed on the host kernels (bit-identical to the
//! Relay interpreter — the correctness check the paper performs against
//! the origin frameworks), while *simulated* time is charged on the
//! `tvmnp-hwsim` cost model: per-segment driver dispatch, per-kernel time
//! on the assigned device, reference-implementation penalty for fallback
//! ops, and a transfer per device-boundary crossing.

use crate::error::NeuronError;
use crate::nir::{NeuronGraph, NeuronOp, NeuronOpKind};
use crate::planner::{ExecutionPlan, Planner, TargetPolicy};
use tvmnp_hwsim::{CostModel, DeviceKind, FaultInjector, KernelClass, RetryPolicy, WorkKind};
use tvmnp_tensor::kernels::{self, BinaryOp, UnaryOp};
use tvmnp_tensor::{QuantParams, Tensor};

/// One entry of [`CompiledNetwork::estimate_breakdown`]: a planned op or
/// an overhead item (`dispatch`, `staging`, `transfer`) with the device it
/// is charged to.
#[derive(Debug, Clone, PartialEq)]
pub struct CostEntry {
    /// Neuron op name, or `dispatch` / `staging` / `transfer`.
    pub label: String,
    /// Device the time is charged to.
    pub device: DeviceKind,
    /// Simulated microseconds.
    pub us: f64,
    /// Whether this is a reference-implementation fallback kernel.
    pub fallback: bool,
}

/// One entry of [`CompiledNetwork::kernel_profile`]: the profile-grade
/// sibling of [`CostEntry`], keeping the work kind and kernel class and
/// pairing the charged time with the *unscaled* analytic prediction and
/// an energy estimate. Times sum exactly to
/// [`CompiledNetwork::estimate_time_us`] and energies to
/// [`CompiledNetwork::estimate_energy_uj`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// Neuron op name, or `dispatch` / `staging` / `transfer`.
    pub label: String,
    /// Work category (overhead entries are data movement).
    pub kind: WorkKind,
    /// Device the time is charged to.
    pub device: DeviceKind,
    /// Kernel provenance (fallback ops run untuned TVM-style kernels).
    pub class: KernelClass,
    /// Charged simulated time, µs (includes injected scaling/throttles).
    pub us: f64,
    /// Analytic prediction with every injected multiplier removed, µs.
    pub analytic_us: f64,
    /// Estimated energy, µJ.
    pub energy_uj: f64,
}

/// A compiled, planned, executable Neuron network.
pub struct CompiledNetwork {
    graph: NeuronGraph,
    plan: ExecutionPlan,
    cost: CostModel,
}

impl CompiledNetwork {
    /// Compile (plan) `graph` for `policy` over the cost model's SoC.
    pub fn compile(
        graph: NeuronGraph,
        policy: TargetPolicy,
        cost: CostModel,
    ) -> Result<Self, NeuronError> {
        let _span = tvmnp_telemetry::span!("neuropilot.compile", "policy" => policy.label());
        let plan = Planner::plan(&graph, policy)?;
        Ok(CompiledNetwork { graph, plan, cost })
    }

    /// Wrap an externally-computed plan (e.g. the op-level scheduler of
    /// [`crate::oplevel`]) into an executable network.
    pub fn from_plan(graph: NeuronGraph, plan: ExecutionPlan, cost: CostModel) -> Self {
        CompiledNetwork { graph, plan, cost }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &NeuronGraph {
        &self.graph
    }

    /// The execution plan.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// Simulated inference time in microseconds (input-independent: static
    /// shapes, static plan).
    pub fn estimate_time_us(&self) -> f64 {
        self.estimate_breakdown().iter().map(|e| e.us).sum()
    }

    /// Analytic cost attribution: one entry per planned op (labelled by
    /// its Neuron op name) plus explicit `dispatch` / `staging` /
    /// `transfer` overhead entries. Entries sum exactly to
    /// [`CompiledNetwork::estimate_time_us`].
    pub fn estimate_breakdown(&self) -> Vec<CostEntry> {
        let mut out = Vec::new();
        for seg in &self.plan.segments {
            out.push(CostEntry {
                label: "dispatch".to_string(),
                device: seg.device,
                us: self.cost.subgraph_dispatch_us(seg.device),
                fallback: false,
            });
            // Off-CPU segments stage their weights through the driver each
            // dispatch (the prototype runtime does not cache them).
            if seg.device != DeviceKind::Cpu {
                let const_bytes: usize = seg
                    .op_indices
                    .iter()
                    .flat_map(|&i| self.graph.ops[i].inputs.iter())
                    .filter(|&&tid| self.graph.tensors[tid].is_const())
                    .map(|&tid| self.graph.tensors[tid].size_bytes())
                    .sum();
                if const_bytes > 0 {
                    out.push(CostEntry {
                        label: "staging".to_string(),
                        device: seg.device,
                        us: self.cost.transfer_us(const_bytes),
                        fallback: false,
                    });
                }
            }
        }
        for (i, op) in self.graph.ops.iter().enumerate() {
            let w = crate::nir::work_item(&self.graph, op);
            let p = self.plan.placements[i];
            let (device, us) = if p.fallback {
                // NNAPI-style reference fallback: untuned CPU kernel.
                (
                    DeviceKind::Cpu,
                    self.cost
                        .kernel_us(&w, DeviceKind::Cpu, KernelClass::TvmUntuned),
                )
            } else {
                (
                    p.device,
                    self.cost.kernel_us(&w, p.device, KernelClass::VendorTuned),
                )
            };
            out.push(CostEntry {
                label: op.kind.name().to_string(),
                device,
                us,
                fallback: p.fallback,
            });
        }
        for &(_, bytes) in &self.plan.crossings {
            out.push(CostEntry {
                label: "transfer".to_string(),
                device: DeviceKind::Cpu,
                us: self.cost.transfer_us(bytes),
                fallback: false,
            });
        }
        out
    }

    /// Simulated inference energy in microjoules: per-op kernel energy on
    /// the assigned device (reference-fallback ops burn untuned-CPU
    /// energy) plus boundary-transfer traffic.
    pub fn estimate_energy_uj(&self) -> f64 {
        let mut e = 0.0;
        for (i, op) in self.graph.ops.iter().enumerate() {
            let w = crate::nir::work_item(&self.graph, op);
            let p = self.plan.placements[i];
            e += if p.fallback {
                self.cost
                    .kernel_energy_uj(&w, DeviceKind::Cpu, KernelClass::TvmUntuned)
            } else {
                self.cost
                    .kernel_energy_uj(&w, p.device, KernelClass::VendorTuned)
            };
        }
        for &(_, bytes) in &self.plan.crossings {
            e += self.cost.transfer_energy_uj(bytes);
        }
        e
    }

    /// Profile-grade cost attribution: [`CompiledNetwork::estimate_breakdown`]
    /// entries enriched with work kind, kernel class, energy, and the
    /// unscaled analytic reference time. The measured-profile ingester
    /// bins these per (kind, device, class) cell; the calibration layer
    /// fits `us / analytic_us` per cell, so injected slowdowns and
    /// thermal throttles surface as scale factors instead of vanishing
    /// into a workload median.
    pub fn kernel_profile(&self) -> Vec<ProfileEntry> {
        let analytic = self.cost.unscaled();
        let mut out = Vec::new();
        let overhead = |label: &str, device: DeviceKind, us: f64, energy_uj: f64| ProfileEntry {
            label: label.to_string(),
            kind: WorkKind::DataMovement,
            device,
            class: KernelClass::VendorTuned,
            us,
            // Dispatch and transfer costs are fixed overheads the scale
            // tables never touch: analytic == charged by construction.
            analytic_us: us,
            energy_uj,
        };
        for seg in &self.plan.segments {
            out.push(overhead(
                "dispatch",
                seg.device,
                self.cost.subgraph_dispatch_us(seg.device),
                0.0,
            ));
            if seg.device != DeviceKind::Cpu {
                let const_bytes: usize = seg
                    .op_indices
                    .iter()
                    .flat_map(|&i| self.graph.ops[i].inputs.iter())
                    .filter(|&&tid| self.graph.tensors[tid].is_const())
                    .map(|&tid| self.graph.tensors[tid].size_bytes())
                    .sum();
                if const_bytes > 0 {
                    // Staging energy stays 0 so profile energies reconcile
                    // with estimate_energy_uj, which does not model it.
                    out.push(overhead(
                        "staging",
                        seg.device,
                        self.cost.transfer_us(const_bytes),
                        0.0,
                    ));
                }
            }
        }
        for (i, op) in self.graph.ops.iter().enumerate() {
            let w = crate::nir::work_item(&self.graph, op);
            let p = self.plan.placements[i];
            let (device, class) = if p.fallback {
                (DeviceKind::Cpu, KernelClass::TvmUntuned)
            } else {
                (p.device, KernelClass::VendorTuned)
            };
            out.push(ProfileEntry {
                label: op.kind.name().to_string(),
                kind: w.kind,
                device,
                class,
                us: self.cost.kernel_us(&w, device, class),
                analytic_us: analytic.kernel_us(&w, device, class),
                energy_uj: self.cost.kernel_energy_uj(&w, device, class),
            });
        }
        for &(_, bytes) in &self.plan.crossings {
            out.push(overhead(
                "transfer",
                DeviceKind::Cpu,
                self.cost.transfer_us(bytes),
                self.cost.transfer_energy_uj(bytes),
            ));
        }
        out
    }

    /// Execute on concrete inputs (in `graph.inputs` order); returns the
    /// output tensors and the simulated time in microseconds.
    pub fn execute(&self, inputs: &[Tensor]) -> Result<(Vec<Tensor>, f64), NeuronError> {
        let _span = tvmnp_telemetry::span!("neuropilot.execute");
        if inputs.len() != self.graph.inputs.len() {
            return Err(NeuronError::Execution(format!(
                "expected {} inputs, got {}",
                self.graph.inputs.len(),
                inputs.len()
            )));
        }
        let mut slots: Vec<Option<Tensor>> = vec![None; self.graph.tensors.len()];
        for (t, slot) in self.graph.tensors.iter().zip(slots.iter_mut()) {
            if let Some(data) = &t.data {
                *slot = Some(data.clone());
            }
        }
        for (&id, input) in self.graph.inputs.iter().zip(inputs) {
            let expect = &self.graph.tensors[id];
            if input.shape() != &expect.shape || input.dtype() != expect.dtype {
                return Err(NeuronError::Execution(format!(
                    "input '{}' expects {} {}, got {} {}",
                    expect.name,
                    expect.shape,
                    expect.dtype,
                    input.shape(),
                    input.dtype()
                )));
            }
            *slot_mut(&mut slots, id)? = Some(input.clone());
        }

        for op in &self.graph.ops {
            let out = self.eval_op(op, &slots)?;
            *slot_mut(&mut slots, op.outputs[0])? = Some(out);
        }

        let mut outputs = Vec::with_capacity(self.graph.outputs.len());
        for &o in &self.graph.outputs {
            outputs.push(
                slots[o]
                    .clone()
                    .ok_or_else(|| NeuronError::Execution(format!("output slot {o} empty")))?,
            );
        }
        Ok((outputs, self.estimate_time_us()))
    }

    /// Execute under fault injection: every per-segment driver dispatch
    /// first consults `injector`, retrying transient faults up to
    /// `retry.max_attempts` with exponential backoff charged in
    /// **simulated** microseconds (an extra dispatch + the backoff per
    /// retry). Fatal faults (device lost) or exhausted retries surface a
    /// typed [`NeuronError::DeviceFault`]; a finite `deadline_us` that the
    /// total simulated time (including retry overhead) exceeds surfaces
    /// [`NeuronError::DeadlineExceeded`]. Numerics are computed exactly as
    /// [`CompiledNetwork::execute`] — faults change time, never values.
    ///
    /// Each recovered retry emits a `resilience.retry` sim span and bumps
    /// the `resilience.retries{device=..}` counter.
    pub fn execute_resilient(
        &self,
        inputs: &[Tensor],
        injector: &FaultInjector,
        retry: &RetryPolicy,
        deadline_us: f64,
    ) -> Result<(Vec<Tensor>, f64), NeuronError> {
        let mut extra_us = 0.0;
        for seg in &self.plan.segments {
            let mut attempt = 1u32;
            loop {
                match injector.on_dispatch(seg.device, attempt) {
                    None => break,
                    Some(fault) if fault.fatal || !retry.allows_retry(attempt) => {
                        return Err(NeuronError::DeviceFault {
                            device: seg.device.name().to_string(),
                            attempts: attempt,
                            cause: fault.description,
                        });
                    }
                    Some(fault) => {
                        // The failed dispatch still cost a driver entry,
                        // then we back off before trying again.
                        let wasted =
                            self.cost.subgraph_dispatch_us(seg.device) + retry.backoff_us(attempt);
                        tvmnp_telemetry::record_sim_span(
                            "resilience.retry",
                            extra_us,
                            wasted,
                            vec![
                                ("device".into(), seg.device.name().into()),
                                ("attempt".into(), attempt.to_string()),
                                ("cause".into(), fault.description),
                            ],
                        );
                        tvmnp_telemetry::counter_add(
                            "resilience.retries",
                            &[("device", seg.device.name())],
                            1,
                        );
                        extra_us += wasted;
                        attempt += 1;
                    }
                }
            }
        }
        let (outputs, base_us) = self.execute(inputs)?;
        let total_us = base_us + extra_us;
        if total_us > deadline_us {
            return Err(NeuronError::DeadlineExceeded {
                budget_us: deadline_us,
                needed_us: total_us,
            });
        }
        Ok((outputs, total_us))
    }

    fn eval_op(&self, op: &NeuronOp, slots: &[Option<Tensor>]) -> Result<Tensor, NeuronError> {
        let get = |i: usize| -> Result<&Tensor, NeuronError> {
            slots
                .get(op.inputs[i])
                .and_then(|s| s.as_ref())
                .ok_or_else(|| NeuronError::Execution(format!("input slot {} empty", op.inputs[i])))
        };
        let quant = |id: usize| -> Result<QuantParams, NeuronError> {
            self.graph.tensors[id].quant.ok_or_else(|| {
                NeuronError::Execution(format!(
                    "tensor '{}' misses quant params",
                    self.graph.tensors[id].name
                ))
            })
        };
        let out_slot = op.outputs[0];
        let out_meta = &self.graph.tensors[out_slot];
        let e = |err: kernels::KernelError| NeuronError::Execution(err.to_string());

        let result = match &op.kind {
            NeuronOpKind::Conv2d {
                strides,
                padding,
                dilation,
                groups,
            } => {
                let params = kernels::Conv2dParams {
                    strides: *strides,
                    padding: *padding,
                    dilation: *dilation,
                    groups: *groups,
                };
                let x = get(0)?;
                let w = get(1)?;
                let bias = if op.inputs.len() > 2 {
                    Some(get(2)?)
                } else {
                    None
                };
                if x.dtype().is_quantized() {
                    let q = kernels::QConvQuant {
                        input: quant(op.inputs[0])?,
                        weight: quant(op.inputs[1])?,
                        output: quant(out_slot)?,
                        out_dtype: out_meta.dtype,
                    };
                    kernels::qconv2d(x, w, bias, &params, &q).map_err(e)?
                } else {
                    kernels::conv2d_f32(x, w, bias, &params).map_err(e)?
                }
            }
            NeuronOpKind::FullyConnected => {
                let x = get(0)?;
                let w = get(1)?;
                let bias = if op.inputs.len() > 2 {
                    Some(get(2)?)
                } else {
                    None
                };
                if x.dtype().is_quantized() {
                    kernels::qdense(
                        x,
                        w,
                        bias,
                        quant(op.inputs[0])?,
                        quant(op.inputs[1])?,
                        quant(out_slot)?,
                        out_meta.dtype,
                    )
                    .map_err(e)?
                } else {
                    kernels::dense_f32(x, w, bias).map_err(e)?
                }
            }
            NeuronOpKind::BiasAdd => kernels::bias_add(get(0)?, get(1)?).map_err(e)?,
            NeuronOpKind::MaxPool2d {
                kernel,
                strides,
                padding,
            } => {
                let p = kernels::Pool2dParams {
                    kernel: *kernel,
                    strides: *strides,
                    padding: *padding,
                    count_include_pad: false,
                };
                kernels::max_pool2d(get(0)?, &p).map_err(e)?
            }
            NeuronOpKind::AvgPool2d {
                kernel,
                strides,
                padding,
            } => {
                let p = kernels::Pool2dParams {
                    kernel: *kernel,
                    strides: *strides,
                    padding: *padding,
                    count_include_pad: false,
                };
                kernels::avg_pool2d(get(0)?, &p).map_err(e)?
            }
            NeuronOpKind::GlobalAvgPool2d => kernels::global_avg_pool2d(get(0)?).map_err(e)?,
            NeuronOpKind::Relu => kernels::unary(get(0)?, UnaryOp::Relu).map_err(e)?,
            NeuronOpKind::LeakyRelu { alpha } => {
                kernels::unary(get(0)?, UnaryOp::LeakyRelu(*alpha)).map_err(e)?
            }
            NeuronOpKind::Clip { min, max } => {
                kernels::unary(get(0)?, UnaryOp::Clip(*min, *max)).map_err(e)?
            }
            NeuronOpKind::Sigmoid => kernels::unary(get(0)?, UnaryOp::Sigmoid).map_err(e)?,
            NeuronOpKind::Tanh => kernels::unary(get(0)?, UnaryOp::Tanh).map_err(e)?,
            NeuronOpKind::Softmax => kernels::softmax_f32(&get(0)?.to_f32()).map_err(e)?,
            NeuronOpKind::Add => {
                let a = get(0)?;
                let b = get(1)?;
                if a.dtype().is_quantized() {
                    kernels::qadd(
                        a,
                        b,
                        quant(op.inputs[0])?,
                        quant(op.inputs[1])?,
                        quant(out_slot)?,
                        out_meta.dtype,
                    )
                    .map_err(e)?
                } else {
                    kernels::binary_f32(a, b, BinaryOp::Add).map_err(e)?
                }
            }
            NeuronOpKind::Mul => kernels::binary_f32(get(0)?, get(1)?, BinaryOp::Mul).map_err(e)?,
            NeuronOpKind::Max => {
                kernels::binary_f32(get(0)?, get(1)?, BinaryOp::Maximum).map_err(e)?
            }
            NeuronOpKind::Reshape { new_shape } => get(0)?
                .reshaped(new_shape.clone())
                .map_err(|err| NeuronError::Execution(err.to_string()))?,
            NeuronOpKind::Transpose { axes } => kernels::transpose(get(0)?, axes).map_err(e)?,
            NeuronOpKind::Concat { axis } => {
                let parts: Vec<&Tensor> = op
                    .inputs
                    .iter()
                    .map(|&i| slots[i].as_ref().unwrap())
                    .collect();
                let c = kernels::concat(&parts, *axis).map_err(e)?;
                match self.graph.tensors[out_slot].quant {
                    Some(q) if c.dtype().is_quantized() => c.with_quant(q),
                    _ => c,
                }
            }
            NeuronOpKind::Pad { pads, value } => kernels::pad(get(0)?, pads, *value).map_err(e)?,
            NeuronOpKind::BatchFlatten => kernels::batch_flatten(get(0)?).map_err(e)?,
            NeuronOpKind::Quantize => get(0)?
                .quantize(quant(out_slot)?, out_meta.dtype)
                .map_err(|err| NeuronError::Execution(err.to_string()))?,
            NeuronOpKind::Dequantize => {
                let x = get(0)?;
                let qp = quant(op.inputs[0])?;
                let vals: Vec<f32> = x.iter_int().map(|q| qp.dequantize(q)).collect();
                Tensor::from_f32(x.shape().clone(), vals)
                    .map_err(|err| NeuronError::Execution(err.to_string()))?
            }
            NeuronOpKind::Requantize => {
                let x = get(0)?;
                let in_q = quant(op.inputs[0])?;
                let out_q = quant(out_slot)?;
                let fpm = tvmnp_tensor::quant::FixedPointMultiplier::from_real(
                    in_q.scale as f64 / out_q.scale as f64,
                );
                let vals: Vec<i32> = x
                    .iter_int()
                    .map(|q| {
                        tvmnp_tensor::quant::requantize_value(
                            q - in_q.zero_point,
                            fpm,
                            out_q.zero_point,
                            out_meta.dtype,
                        )
                    })
                    .collect();
                Tensor::from_int_values(x.shape().clone(), &vals, out_meta.dtype, Some(out_q))
                    .map_err(|err| NeuronError::Execution(err.to_string()))?
            }
        };
        Ok(result)
    }
}

fn slot_mut(slots: &mut [Option<Tensor>], id: usize) -> Result<&mut Option<Tensor>, NeuronError> {
    slots
        .get_mut(id)
        .ok_or_else(|| NeuronError::Execution(format!("slot {id} out of range")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::convert_function;
    use crate::nir::work_item;
    use std::collections::HashMap;
    use tvmnp_hwsim::WorkKind;
    use tvmnp_relay::builder;
    use tvmnp_relay::expr::{var, Function, Module};
    use tvmnp_relay::interp::run_module;
    use tvmnp_relay::{Conv2dAttrs, TensorType};
    use tvmnp_tensor::rng::TensorRng;
    use tvmnp_tensor::DType;

    fn small_net() -> (Function, Tensor) {
        let mut rng = TensorRng::new(21);
        let x = var("x", TensorType::f32([1, 3, 8, 8]));
        let w = rng.uniform_f32([4, 3, 3, 3], -0.5, 0.5);
        let b = rng.uniform_f32([4], -0.1, 0.1);
        let body = builder::softmax(builder::batch_flatten(builder::relu(builder::bias_add(
            builder::conv2d(x.clone(), w, Conv2dAttrs::same(1)),
            b,
        ))));
        (
            Function::new(vec![x], body),
            rng.uniform_f32([1, 3, 8, 8], -1.0, 1.0),
        )
    }

    #[test]
    fn neuron_runtime_matches_relay_interpreter() {
        let (f, input) = small_net();
        let g = convert_function(&f).unwrap();
        let net = CompiledNetwork::compile(g, TargetPolicy::CpuOnly, CostModel::default()).unwrap();
        let (outs, time_us) = net.execute(std::slice::from_ref(&input)).unwrap();
        let module = Module::from_main(f);
        let mut ins = HashMap::new();
        ins.insert("x".to_string(), input);
        let reference = run_module(&module, &ins).unwrap();
        assert!(
            outs[0].bit_eq(&reference),
            "Neuron path must be bit-identical to Relay"
        );
        assert!(time_us > 0.0);
    }

    #[test]
    fn policies_agree_numerically_but_not_in_time() {
        let (f, input) = small_net();
        let g = convert_function(&f).unwrap();
        let mut times = Vec::new();
        let mut outputs: Vec<Tensor> = Vec::new();
        for policy in TargetPolicy::ALL {
            let net = CompiledNetwork::compile(g.clone(), policy, CostModel::default()).unwrap();
            let (outs, t) = net.execute(std::slice::from_ref(&input)).unwrap();
            times.push(t);
            outputs.push(outs[0].clone());
        }
        for o in &outputs[1..] {
            assert!(o.bit_eq(&outputs[0]), "placement must not change numerics");
        }
        // Times differ across policies (different devices/overheads).
        assert!(times.iter().any(|&t| (t - times[0]).abs() > 1e-6));
    }

    #[test]
    fn kernel_profile_reconciles_with_estimates() {
        let (f, _) = small_net();
        let g = convert_function(&f).unwrap();
        let scaled = CostModel::default().with_kind_scale(WorkKind::MacHeavy, 2.0);
        let net = CompiledNetwork::compile(g, TargetPolicy::CpuApu, scaled).unwrap();
        let profile = net.kernel_profile();
        let total_us: f64 = profile.iter().map(|e| e.us).sum();
        let total_uj: f64 = profile.iter().map(|e| e.energy_uj).sum();
        assert!((total_us - net.estimate_time_us()).abs() < 1e-9);
        assert!((total_uj - net.estimate_energy_uj()).abs() < 1e-9);
        // The injected 2x mac slowdown separates measured from analytic
        // exactly on mac kernels; overhead entries stay at parity.
        for e in &profile {
            match e.kind {
                WorkKind::MacHeavy => assert!(
                    e.us > e.analytic_us,
                    "{}: scaled mac kernel must exceed analytic",
                    e.label
                ),
                _ if e.label == "dispatch" || e.label == "staging" || e.label == "transfer" => {
                    assert_eq!(e.us, e.analytic_us, "{}: overheads are unscaled", e.label)
                }
                _ => assert!((e.us - e.analytic_us).abs() < 1e-9, "{}", e.label),
            }
        }
    }

    #[test]
    fn wrong_input_shape_rejected() {
        let (f, _) = small_net();
        let g = convert_function(&f).unwrap();
        let net = CompiledNetwork::compile(g, TargetPolicy::CpuOnly, CostModel::default()).unwrap();
        let bad = Tensor::zeros_f32([1, 3, 4, 4]);
        assert!(net.execute(&[bad]).is_err());
    }

    #[test]
    fn work_item_conv_macs() {
        let (f, _) = small_net();
        let g = convert_function(&f).unwrap();
        let conv = &g.ops[0];
        let w = work_item(&g, conv);
        // out 1x4x8x8 = 256 elems, 3*3*3 = 27 MACs each.
        assert_eq!(w.macs, 256 * 27);
        assert_eq!(w.kind, WorkKind::MacHeavy);
        assert!(!w.int8);
    }

    #[test]
    fn quantized_network_runs_end_to_end() {
        use tvmnp_relay::expr::call;
        use tvmnp_relay::{DequantizeAttrs, OpKind, QnnConv2dAttrs, QuantizeAttrs};
        let mut rng = TensorRng::new(31);
        let qx = QuantParams::new(1.0 / 64.0, 128);
        let qw = QuantParams::new(1.0 / 128.0, 0);
        let qy = QuantParams::new(1.0 / 16.0, 128);
        let x = var("x", TensorType::f32([1, 2, 6, 6]));
        let q = call(
            OpKind::QnnQuantize(QuantizeAttrs {
                out: qx,
                out_dtype: DType::U8,
            }),
            vec![x.clone()],
        );
        let w = rng.uniform_quantized([4, 2, 3, 3], DType::I8, qw);
        let conv = call(
            OpKind::QnnConv2d(QnnConv2dAttrs {
                conv: Conv2dAttrs::same(1),
                input_q: qx,
                weight_q: qw,
                output_q: qy,
                out_dtype: DType::U8,
            }),
            vec![q, tvmnp_relay::expr::constant(w)],
        );
        let d = call(
            OpKind::QnnDequantize(DequantizeAttrs { input: qy }),
            vec![conv],
        );
        let f = Function::new(vec![x.clone()], d);
        let g = convert_function(&f).unwrap();
        let net =
            CompiledNetwork::compile(g, TargetPolicy::ApuPrefer, CostModel::default()).unwrap();
        let input = rng.uniform_f32([1, 2, 6, 6], -1.0, 1.0);
        let (outs, _) = net.execute(std::slice::from_ref(&input)).unwrap();
        // Reference through the Relay interpreter.
        let module = Module::from_main(f);
        let mut ins = HashMap::new();
        ins.insert("x".to_string(), input);
        let reference = run_module(&module, &ins).unwrap();
        assert!(outs[0].bit_eq(&reference));
    }

    #[test]
    fn resilient_execute_retries_transient_faults_and_charges_sim_time() {
        use tvmnp_hwsim::{FaultPlan, RetryPolicy};
        let (f, input) = small_net();
        let g = convert_function(&f).unwrap();
        let net = CompiledNetwork::compile(g, TargetPolicy::CpuOnly, CostModel::default()).unwrap();
        let (clean, base_us) = net.execute(std::slice::from_ref(&input)).unwrap();
        let injector = FaultInjector::new(
            FaultPlan::seeded(7).transient_dispatch(tvmnp_hwsim::DeviceKind::Cpu, 2),
        );
        let (outs, faulted_us) = net
            .execute_resilient(&[input], &injector, &RetryPolicy::default(), f64::INFINITY)
            .unwrap();
        assert!(outs[0].bit_eq(&clean[0]), "faults must not change numerics");
        assert!(
            faulted_us > base_us,
            "retries must cost simulated time ({faulted_us} vs {base_us})"
        );
        assert!(injector.faults_injected() >= 1);
    }

    #[test]
    fn resilient_execute_surfaces_fatal_fault_and_deadline() {
        use tvmnp_hwsim::{DeviceKind, FaultPlan, RetryPolicy};
        let (f, input) = small_net();
        let g = convert_function(&f).unwrap();
        let net = CompiledNetwork::compile(g, TargetPolicy::CpuOnly, CostModel::default()).unwrap();
        let lost = FaultInjector::new(FaultPlan::seeded(1).device_lost(DeviceKind::Cpu));
        let err = net
            .execute_resilient(
                std::slice::from_ref(&input),
                &lost,
                &RetryPolicy::default(),
                f64::INFINITY,
            )
            .unwrap_err();
        assert!(
            matches!(err, NeuronError::DeviceFault { ref device, .. } if device == "cpu"),
            "{err}"
        );
        let none = FaultInjector::inactive();
        let err = net
            .execute_resilient(&[input], &none, &RetryPolicy::default(), 0.001)
            .unwrap_err();
        assert!(matches!(err, NeuronError::DeadlineExceeded { .. }), "{err}");
    }

    #[test]
    fn apu_faster_than_cpu_for_quantized_conv_heavy_graph() {
        use tvmnp_relay::expr::call;
        use tvmnp_relay::{OpKind, QnnConv2dAttrs};
        let mut rng = TensorRng::new(41);
        let qx = QuantParams::new(0.02, 128);
        let qw = QuantParams::new(0.01, 0);
        let x = var("x", TensorType::new([1, 32, 56, 56], DType::U8));
        let mut e = x.clone();
        for _ in 0..4 {
            let w = rng.uniform_quantized([32, 32, 3, 3], DType::I8, qw);
            e = call(
                OpKind::QnnConv2d(QnnConv2dAttrs {
                    conv: Conv2dAttrs::same(1),
                    input_q: qx,
                    weight_q: qw,
                    output_q: qx,
                    out_dtype: DType::U8,
                }),
                vec![e, tvmnp_relay::expr::constant(w)],
            );
        }
        let f = Function::new(vec![x], e);
        let g = convert_function(&f).unwrap();
        let apu =
            CompiledNetwork::compile(g.clone(), TargetPolicy::ApuPrefer, CostModel::default())
                .unwrap()
                .estimate_time_us();
        let cpu = CompiledNetwork::compile(g, TargetPolicy::CpuOnly, CostModel::default())
            .unwrap()
            .estimate_time_us();
        assert!(
            apu < cpu,
            "APU ({apu} us) must beat CPU ({cpu} us) on int8 convs"
        );
    }
}
