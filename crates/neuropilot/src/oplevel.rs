//! Operation-level scheduling — the paper's stated future work (§5.1):
//!
//! > "Another perspective is operation-level, which means we should assign
//! > the corresponding efficient targets to each operation. Compared to
//! > the model-level, this is more difficult since we need to break the
//! > models apart and also consider the I/O time while transferring data
//! > between targets."
//!
//! This module implements exactly that: a dynamic program over the op
//! sequence that picks a device per operation, charging each op's kernel
//! time on its device *plus* the transfer time of every data edge whose
//! producer sits on a different device, plus a driver dispatch each time
//! the execution switches devices. On chain-shaped networks (the CNNs of
//! the paper) the DP is exact; on DAGs the transfer term uses the true
//! producer edges while dispatch counting follows the (topological)
//! execution order, which is the order the runtime issues work in anyway.

use crate::error::NeuronError;
use crate::nir::{work_item, NeuronGraph};
use crate::planner::{ExecutionPlan, Placement, PlanSegment, TargetPolicy};
use crate::support::device_supports;
use std::collections::HashMap;
use tvmnp_hwsim::{CostModel, DeviceKind, KernelClass};

/// Devices the op-level scheduler considers.
const CANDIDATES: [DeviceKind; 2] = [DeviceKind::Cpu, DeviceKind::Apu];

/// Plan `graph` with the op-level dynamic program over `cost`.
///
/// Returns an [`ExecutionPlan`] tagged [`TargetPolicy::CpuApu`] (it uses
/// the same device set; only the assignment algorithm differs).
pub fn plan_op_level(graph: &NeuronGraph, cost: &CostModel) -> Result<ExecutionPlan, NeuronError> {
    let n = graph.ops.len();
    if n == 0 {
        return Ok(ExecutionPlan {
            policy: TargetPolicy::CpuApu,
            placements: Vec::new(),
            segments: Vec::new(),
            crossings: Vec::new(),
        });
    }

    // producer[tensor] = op index
    let mut producer: HashMap<usize, usize> = HashMap::new();
    for (i, op) in graph.ops.iter().enumerate() {
        for &o in &op.outputs {
            producer.insert(o, i);
        }
    }

    // kernel_time[i][d]: op i on device d (infinity when unsupported).
    let time_of = |i: usize, d: DeviceKind| -> f64 {
        let op = &graph.ops[i];
        if !device_supports(d, &op.kind) {
            return f64::INFINITY;
        }
        let w = work_item(graph, op);
        cost.kernel_us(&w, d, KernelClass::VendorTuned)
    };

    // Edge-transfer cost of placing op i on device d, given an assignment
    // of all earlier ops (true producer edges). Host boundary: graph
    // inputs live CPU-side.
    let edge_cost = |i: usize, d: DeviceKind, assigned: &[DeviceKind]| -> f64 {
        let mut t = 0.0;
        for &tid in &graph.ops[i].inputs {
            if graph.tensors[tid].is_const() {
                continue; // weights ship with the compiled segment
            }
            let src = match producer.get(&tid) {
                Some(&pi) => assigned[pi],
                None => DeviceKind::Cpu, // graph input arrives on the host side
            };
            if src != d {
                t += cost.transfer_us(graph.tensors[tid].size_bytes());
            }
        }
        t
    };

    // DP over (op index, device of this op). Because edge costs may reach
    // back to any earlier producer, the exact DP state would be the full
    // assignment; we use the standard approximation of carrying only the
    // previous op's device and charging non-chain edges against the
    // device chosen for their producer on the best path (reconstructed
    // greedily afterwards). For chains this is exact.
    let mut dp: Vec<HashMap<DeviceKind, (f64, Option<DeviceKind>)>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut row = HashMap::new();
        for &d in &CANDIDATES {
            let kt = time_of(i, d);
            if kt.is_infinite() {
                continue;
            }
            if i == 0 {
                // Entry: input transfer when the first op is off-CPU.
                let mut c = kt + cost.subgraph_dispatch_us(d);
                for &tid in &graph.ops[0].inputs {
                    if !graph.tensors[tid].is_const() && d != DeviceKind::Cpu {
                        c += cost.transfer_us(graph.tensors[tid].size_bytes());
                    }
                }
                row.insert(d, (c, None));
            } else {
                let mut best: Option<(f64, DeviceKind)> = None;
                for (&pd, &(pc, _)) in &dp[i - 1] {
                    // Chain-edge transfer approximation: switching devices
                    // costs a dispatch; actual tensor-edge transfers are
                    // charged exactly in the reconstruction pass below, so
                    // here we add the chain edge only.
                    let switch = if pd == d {
                        0.0
                    } else {
                        cost.subgraph_dispatch_us(d)
                    };
                    let chain_edge = {
                        // The data edge from the previous op, when it feeds us.
                        let prev_outputs = &graph.ops[i - 1].outputs;
                        let feeds: usize = graph.ops[i]
                            .inputs
                            .iter()
                            .filter(|t| prev_outputs.contains(t))
                            .map(|&t| graph.tensors[t].size_bytes())
                            .sum();
                        if pd != d && feeds > 0 {
                            cost.transfer_us(feeds)
                        } else {
                            0.0
                        }
                    };
                    let c = pc + kt + switch + chain_edge;
                    if best.map(|(b, _)| c < b).unwrap_or(true) {
                        best = Some((c, pd));
                    }
                }
                if let Some((c, pd)) = best {
                    row.insert(d, (c, Some(pd)));
                }
            }
        }
        if row.is_empty() {
            return Err(NeuronError::NoCapableDevice {
                op: graph.ops[i].kind.name().to_string(),
                policy: "op-level".to_string(),
            });
        }
        dp.push(row);
    }

    // Reconstruct the best assignment.
    let mut assigned = vec![DeviceKind::Cpu; n];
    let (&last_dev, _) = dp[n - 1]
        .iter()
        .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
        .expect("non-empty dp row");
    assigned[n - 1] = last_dev;
    for i in (1..n).rev() {
        let (_, prev) = dp[i][&assigned[i]];
        assigned[i - 1] = prev.expect("chain link");
    }

    // Local improvement sweep with EXACT edge costs (fixes the chain
    // approximation on branchy graphs): flip any op whose total cost
    // (kernel + its in-edges + its consumers' in-edges) improves.
    let mut improved = true;
    let mut guard = 0;
    while improved && guard < 8 {
        improved = false;
        guard += 1;
        for i in 0..n {
            let current = assigned[i];
            for &d in &CANDIDATES {
                if d == current || time_of(i, d).is_infinite() {
                    continue;
                }
                let local = |dev: DeviceKind, assigned: &mut Vec<DeviceKind>| -> f64 {
                    let old = assigned[i];
                    assigned[i] = dev;
                    let mut t = time_of(i, dev) + edge_cost(i, dev, assigned);
                    // Downstream edges out of op i.
                    for (j, op) in graph.ops.iter().enumerate() {
                        if j == i {
                            continue;
                        }
                        for &tid in &op.inputs {
                            if producer.get(&tid) == Some(&i) && assigned[j] != dev {
                                t += cost.transfer_us(graph.tensors[tid].size_bytes());
                            }
                        }
                    }
                    assigned[i] = old;
                    t
                };
                let mut work = assigned.clone();
                let t_cur = local(current, &mut work);
                let t_new = local(d, &mut work);
                if t_new + 1e-9 < t_cur {
                    assigned[i] = d;
                    improved = true;
                }
            }
        }
    }

    // Materialize the plan structures the runtime consumes.
    let placements: Vec<Placement> = assigned
        .iter()
        .map(|&device| Placement {
            device,
            fallback: false,
        })
        .collect();
    let mut segments: Vec<PlanSegment> = Vec::new();
    for (i, p) in placements.iter().enumerate() {
        match segments.last_mut() {
            Some(seg) if seg.device == p.device => seg.op_indices.push(i),
            _ => segments.push(PlanSegment {
                device: p.device,
                op_indices: vec![i],
            }),
        }
    }
    let mut crossings = Vec::new();
    for (i, op) in graph.ops.iter().enumerate() {
        for &t in &op.inputs {
            if let Some(&pi) = producer.get(&t) {
                if placements[pi].device != placements[i].device {
                    crossings.push((t, graph.tensors[t].size_bytes()));
                }
            }
        }
    }
    for &t in &graph.inputs {
        let consumed_off_cpu = graph
            .ops
            .iter()
            .enumerate()
            .any(|(i, op)| op.inputs.contains(&t) && placements[i].device != DeviceKind::Cpu);
        if consumed_off_cpu {
            crossings.push((t, graph.tensors[t].size_bytes()));
        }
    }
    for &t in &graph.outputs {
        if let Some(&pi) = producer.get(&t) {
            if placements[pi].device != DeviceKind::Cpu {
                crossings.push((t, graph.tensors[t].size_bytes()));
            }
        }
    }

    Ok(ExecutionPlan {
        policy: TargetPolicy::CpuApu,
        placements,
        segments,
        crossings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::convert_function;
    use crate::runtime::CompiledNetwork;
    use tvmnp_relay::builder;
    use tvmnp_relay::expr::{var, Function};
    use tvmnp_relay::{Conv2dAttrs, TensorType};
    use tvmnp_tensor::rng::TensorRng;

    fn cnn(channels: usize, layers: usize, seed: u64) -> NeuronGraph {
        let mut rng = TensorRng::new(seed);
        let x = var("x", TensorType::f32([1, channels, 32, 32]));
        let mut e = x.clone();
        for _ in 0..layers {
            let w = rng.uniform_f32([channels, channels, 3, 3], -0.3, 0.3);
            e = builder::relu(builder::conv2d(e, w, Conv2dAttrs::same(1)));
        }
        convert_function(&Function::new(vec![x], e)).unwrap()
    }

    fn plan_time(graph: &NeuronGraph, plan: ExecutionPlan, cost: &CostModel) -> f64 {
        CompiledNetwork::from_plan(graph.clone(), plan, cost.clone()).estimate_time_us()
    }

    #[test]
    fn op_level_never_worse_than_fixed_policies() {
        let cost = CostModel::default();
        for (ch, layers, seed) in [(8usize, 3usize, 1u64), (64, 4, 2), (32, 6, 3)] {
            let g = cnn(ch, layers, seed);
            let op_level = plan_op_level(&g, &cost).unwrap();
            let t_op = plan_time(&g, op_level, &cost);
            for policy in TargetPolicy::ALL {
                if policy == TargetPolicy::GpuPrefer {
                    continue; // op-level only considers CPU/APU
                }
                let fixed = crate::planner::Planner::plan(&g, policy).unwrap();
                let t_fixed = plan_time(&g, fixed, &cost);
                assert!(
                    t_op <= t_fixed * 1.001,
                    "ch={ch} layers={layers}: op-level {t_op:.1}us vs {policy} {t_fixed:.1}us"
                );
            }
        }
    }

    #[test]
    fn small_graphs_stay_on_cpu() {
        let cost = CostModel::default();
        let g = cnn(4, 2, 7);
        let plan = plan_op_level(&g, &cost).unwrap();
        assert!(
            plan.placements.iter().all(|p| p.device == DeviceKind::Cpu),
            "tiny convs cannot amortize the APU"
        );
    }

    #[test]
    fn big_convs_move_to_apu() {
        let cost = CostModel::default();
        let g = cnn(128, 3, 8);
        let plan = plan_op_level(&g, &cost).unwrap();
        assert!(
            plan.placements.iter().any(|p| p.device == DeviceKind::Apu),
            "128-channel convs at 32x32 should amortize the APU"
        );
    }

    #[test]
    fn numerics_unchanged_under_op_level_plan() {
        let cost = CostModel::default();
        let mut rng = TensorRng::new(9);
        let g = cnn(16, 3, 9);
        let plan = plan_op_level(&g, &cost).unwrap();
        let net = CompiledNetwork::from_plan(g.clone(), plan, cost.clone());
        let cpu = CompiledNetwork::compile(g.clone(), TargetPolicy::CpuOnly, cost).unwrap();
        let input = rng.uniform_f32([1, 16, 32, 32], -1.0, 1.0);
        let (a, _) = net.execute(std::slice::from_ref(&input)).unwrap();
        let (b, _) = cpu.execute(&[input]).unwrap();
        assert!(a[0].bit_eq(&b[0]));
    }
}
