//! Operator-coverage matrices.
//!
//! NeuroPilot supports *fewer* operators than TVM (paper §5, Fig. 4/6:
//! "NeuroPilot does not support as many AI operations as TVM, so there may
//! not be any statistics"). Two levels of coverage matter:
//!
//! * [`neuron_supported`] — can the Neuron compiler ingest the op at all?
//!   This drives the BYOC annotate step and decides whether a
//!   NeuroPilot-only build succeeds (missing bars when it does not).
//! * [`device_supports`] — can a given back-end target execute the Neuron
//!   opcode? The APU's narrower coverage forces CPU fallbacks, which is
//!   what makes the CPU+APU permutations interesting (paper §5.1).

use crate::nir::NeuronOpKind;
use std::collections::HashSet;
use std::sync::OnceLock;
use tvmnp_hwsim::DeviceKind;
use tvmnp_relay::passes::CompilerSupport;
use tvmnp_relay::{OpKind, Type};

/// Relay op names the Neuron compiler can convert (keys of the
/// op-handler dictionary in [`crate::convert`]).
pub const NEURON_RELAY_OPS: &[&str] = &[
    "nn.conv2d",
    "nn.dense",
    "nn.bias_add",
    "nn.relu",
    "nn.leaky_relu",
    "clip",
    "sigmoid",
    "tanh",
    "nn.max_pool2d",
    "nn.avg_pool2d",
    "nn.global_avg_pool2d",
    "nn.softmax",
    "add",
    "multiply",
    "maximum",
    "reshape",
    "transpose",
    "concatenate",
    "nn.pad",
    "nn.batch_flatten",
    "qnn.quantize",
    "qnn.dequantize",
    "qnn.requantize",
    "qnn.conv2d",
    "qnn.dense",
    "qnn.add",
    "qnn.concatenate",
];

fn neuron_set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| NEURON_RELAY_OPS.iter().copied().collect())
}

/// Whether NeuroPilot can take this Relay op at all.
///
/// Notable gaps (all of which appear in the paper's model set and produce
/// its missing bars): unfused `nn.batch_norm` (vendor compilers expect BN
/// folded at export), `exp`/`mean`/`image.resize2d` (detection post-
/// processing), `strided_slice`, `nn.log_softmax`.
pub fn neuron_supported(op_name: &str) -> bool {
    neuron_set().contains(op_name)
}

/// Which Neuron opcodes each device can execute.
pub fn device_supports(device: DeviceKind, op: &NeuronOpKind) -> bool {
    match device {
        // The vendor CPU (and GPU) kernels cover the full Neuron opcode set.
        DeviceKind::Cpu | DeviceKind::Gpu => true,
        // The APU 3.0 datapath covers the CNN core but not the
        // transcendental activations (driver falls back to CPU for those).
        DeviceKind::Apu => !matches!(
            op,
            NeuronOpKind::Sigmoid
                | NeuronOpKind::Tanh
                | NeuronOpKind::LeakyRelu { .. }
                | NeuronOpKind::Mul
                | NeuronOpKind::Max
        ),
    }
}

/// The [`CompilerSupport`] oracle handed to the BYOC partitioner: "offload
/// to NeuroPilot whatever its compiler can ingest".
pub struct NeuronSupport;

impl CompilerSupport for NeuronSupport {
    fn name(&self) -> &str {
        "neuropilot"
    }

    fn supported(&self, op: &OpKind, _arg_types: &[&Type]) -> bool {
        neuron_supported(op.name())
    }
}

/// Check an entire Relay function body for full Neuron coverage, returning
/// the first unsupported op name if any. NeuroPilot-only builds require
/// this to pass.
pub fn first_unsupported(func: &tvmnp_relay::Function) -> Option<String> {
    let mut bad: Option<String> = None;
    tvmnp_relay::visit::post_order(&func.body, |e| {
        if bad.is_some() {
            return;
        }
        if let Some(op) = e.op() {
            if !neuron_supported(op.name()) {
                bad = Some(op.name().to_string());
            }
        }
    });
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_cnn_ops_supported() {
        for op in [
            "nn.conv2d",
            "nn.dense",
            "nn.relu",
            "nn.softmax",
            "qnn.conv2d",
        ] {
            assert!(neuron_supported(op), "{op} must be supported");
        }
    }

    #[test]
    fn known_gaps_unsupported() {
        for op in [
            "nn.batch_norm",
            "exp",
            "mean",
            "image.resize2d",
            "strided_slice",
        ] {
            assert!(!neuron_supported(op), "{op} must be unsupported");
        }
    }

    #[test]
    fn apu_narrower_than_cpu() {
        assert!(device_supports(DeviceKind::Cpu, &NeuronOpKind::Sigmoid));
        assert!(!device_supports(DeviceKind::Apu, &NeuronOpKind::Sigmoid));
        assert!(device_supports(DeviceKind::Apu, &NeuronOpKind::Softmax));
        assert!(device_supports(
            DeviceKind::Apu,
            &NeuronOpKind::Conv2d {
                strides: (1, 1),
                padding: (0, 0, 0, 0),
                dilation: (1, 1),
                groups: 1
            }
        ));
    }

    #[test]
    fn oracle_matches_set() {
        use tvmnp_relay::passes::CompilerSupport as _;
        let s = NeuronSupport;
        assert!(s.supported(&OpKind::Relu, &[]));
        assert!(!s.supported(
            &OpKind::BatchNorm(tvmnp_relay::BatchNormAttrs { epsilon: 1e-5 }),
            &[]
        ));
    }
}
