//! Relay → Neuron IR conversion (paper §3.2, Listing 1).
//!
//! The converter walks the Relay AST with a post-order DFS, keeps a
//! [`NodeEntry`] per visited expression in a `node_entry_dict`, and looks
//! up each call's conversion logic in an `op_handler_dict` keyed by the
//! Relay operator name — exactly the structure of the paper's listing:
//!
//! ```text
//! def visit_call(call):
//!     node_entry = NodeEntry()
//!     for arg in call.args: visit(arg); node_entry.inputs.add(arg.outputs)
//!     op_handler_dict[get_op_name(call)].create_op(call, node_entry)
//!     node_entry_dict[call] = node_entry
//! ```
//!
//! The §3.3 QNN flow is implemented in two parts: the `qnn.*` handlers
//! stamp the operator-declared parameters onto the operand/result tensors
//! (tensor-oriented form), and [`propagate_quant_params`] carries those
//! parameters forward *and backward* through quantization-transparent
//! non-QNN ops ("we pass the output quantization parameters directly to
//! the input and continue passing them").

use crate::error::NeuronError;
use crate::nir::{NeuronGraph, NeuronOp, NeuronOpKind, NeuronTensor, TensorId};
use std::collections::HashMap;
use std::sync::OnceLock;
use tvmnp_relay::expr::{CallTarget, Expr, ExprKind, Function, Module};
use tvmnp_relay::infer::{infer_types, TypeMap};
use tvmnp_relay::visit::topo_order;
use tvmnp_relay::OpKind;
use tvmnp_tensor::QuantParams;

/// Per-expression bookkeeping, as in paper Listing 1.
#[derive(Debug, Clone, Default)]
pub struct NodeEntry {
    /// Tensor ids feeding this node.
    pub inputs: Vec<TensorId>,
    /// Tensor ids this node produces.
    pub outputs: Vec<TensorId>,
}

/// Conversion context: the growing graph plus the node-entry dictionary.
struct Ctx<'a> {
    graph: NeuronGraph,
    node_entry_dict: HashMap<usize, NodeEntry>,
    types: &'a TypeMap,
}

impl Ctx<'_> {
    /// Tensor ids of each argument (first output of each arg's entry).
    fn arg_ids(&self, e: &Expr) -> Result<Vec<TensorId>, NeuronError> {
        e.args()
            .iter()
            .map(|a| {
                self.node_entry_dict
                    .get(&a.id)
                    .and_then(|en| en.outputs.first().copied())
                    .ok_or_else(|| {
                        NeuronError::Conversion(format!("argument {} not yet visited", a.label()))
                    })
            })
            .collect()
    }

    /// Allocate the activation tensor for `e`'s (single-tensor) result.
    fn new_output(
        &mut self,
        e: &Expr,
        quant: Option<QuantParams>,
    ) -> Result<TensorId, NeuronError> {
        let ty = self.types.get(&e.id).ok_or_else(|| {
            NeuronError::Conversion(format!("no inferred type for node {}", e.label()))
        })?;
        let tt = ty
            .tensor()
            .ok_or_else(|| NeuronError::Conversion(format!("{} yields a tuple", e.label())))?;
        Ok(self.graph.add_tensor(NeuronTensor {
            name: format!("{}_{}", e.label().replace('.', "_"), e.id),
            shape: tt.shape.clone(),
            dtype: tt.dtype,
            quant,
            data: None,
        }))
    }

    /// Set/overwrite quantization parameters of a tensor slot.
    fn set_quant(&mut self, id: TensorId, q: QuantParams) {
        let t = &mut self.graph.tensors[id];
        if t.quant.is_none() {
            t.quant = Some(q);
        }
    }

    /// Quant params currently on a slot.
    fn quant_of(&self, id: TensorId) -> Option<QuantParams> {
        self.graph.tensors[id].quant
    }

    /// Emit the op and record its entry.
    fn push(&mut self, e: &Expr, kind: NeuronOpKind, inputs: Vec<TensorId>, output: TensorId) {
        self.graph.add_op(NeuronOp {
            kind,
            inputs: inputs.clone(),
            outputs: vec![output],
        });
        self.node_entry_dict.insert(
            e.id,
            NodeEntry {
                inputs,
                outputs: vec![output],
            },
        );
    }
}

type Handler = fn(&mut Ctx, &Expr, &OpKind) -> Result<(), NeuronError>;

/// The op-handler dictionary of Listing 1: Relay op name → conversion
/// logic. Its key set *is* the NeuroPilot support matrix
/// ([`crate::support::NEURON_RELAY_OPS`]).
fn op_handler_dict() -> &'static HashMap<&'static str, Handler> {
    static DICT: OnceLock<HashMap<&'static str, Handler>> = OnceLock::new();
    DICT.get_or_init(|| {
        let mut d: HashMap<&'static str, Handler> = HashMap::new();
        d.insert("nn.conv2d", h_conv2d);
        d.insert("qnn.conv2d", h_conv2d);
        d.insert("nn.dense", h_dense);
        d.insert("qnn.dense", h_dense);
        d.insert("nn.bias_add", h_simple);
        d.insert("nn.relu", h_simple);
        d.insert("nn.leaky_relu", h_simple);
        d.insert("clip", h_simple);
        d.insert("sigmoid", h_simple);
        d.insert("tanh", h_simple);
        d.insert("nn.max_pool2d", h_simple);
        d.insert("nn.avg_pool2d", h_simple);
        d.insert("nn.global_avg_pool2d", h_simple);
        d.insert("nn.softmax", h_simple);
        d.insert("add", h_simple);
        d.insert("multiply", h_simple);
        d.insert("maximum", h_simple);
        d.insert("reshape", h_simple);
        d.insert("transpose", h_simple);
        d.insert("concatenate", h_simple);
        d.insert("nn.pad", h_simple);
        d.insert("nn.batch_flatten", h_simple);
        d.insert("qnn.quantize", h_qnn_unary);
        d.insert("qnn.dequantize", h_qnn_unary);
        d.insert("qnn.requantize", h_qnn_unary);
        d.insert("qnn.add", h_qnn_add);
        d.insert("qnn.concatenate", h_qnn_concat);
        d
    })
}

/// Map a Relay op to its Neuron opcode (attributes carried over; quant
/// attributes deliberately dropped — they move onto tensors).
fn neuron_kind(op: &OpKind) -> Result<NeuronOpKind, NeuronError> {
    Ok(match op {
        OpKind::Conv2d(a) => NeuronOpKind::Conv2d {
            strides: a.strides,
            padding: a.padding,
            dilation: a.dilation,
            groups: a.groups,
        },
        OpKind::QnnConv2d(a) => NeuronOpKind::Conv2d {
            strides: a.conv.strides,
            padding: a.conv.padding,
            dilation: a.conv.dilation,
            groups: a.conv.groups,
        },
        OpKind::Dense | OpKind::QnnDense(_) => NeuronOpKind::FullyConnected,
        OpKind::BiasAdd => NeuronOpKind::BiasAdd,
        OpKind::Relu => NeuronOpKind::Relu,
        OpKind::LeakyRelu(a) => NeuronOpKind::LeakyRelu { alpha: a.alpha },
        OpKind::Clip(a) => NeuronOpKind::Clip {
            min: a.min,
            max: a.max,
        },
        OpKind::Sigmoid => NeuronOpKind::Sigmoid,
        OpKind::Tanh => NeuronOpKind::Tanh,
        OpKind::MaxPool2d(a) => NeuronOpKind::MaxPool2d {
            kernel: a.kernel,
            strides: a.strides,
            padding: a.padding,
        },
        OpKind::AvgPool2d(a) => NeuronOpKind::AvgPool2d {
            kernel: a.kernel,
            strides: a.strides,
            padding: a.padding,
        },
        OpKind::GlobalAvgPool2d => NeuronOpKind::GlobalAvgPool2d,
        OpKind::Softmax => NeuronOpKind::Softmax,
        OpKind::Add => NeuronOpKind::Add,
        OpKind::QnnAdd(_) => NeuronOpKind::Add,
        OpKind::Multiply => NeuronOpKind::Mul,
        OpKind::Maximum => NeuronOpKind::Max,
        OpKind::Reshape(a) => NeuronOpKind::Reshape {
            new_shape: a.new_shape.clone(),
        },
        OpKind::Transpose(a) => NeuronOpKind::Transpose {
            axes: a.axes.clone(),
        },
        OpKind::Concatenate(a) => NeuronOpKind::Concat { axis: a.axis },
        OpKind::QnnConcatenate(a) => NeuronOpKind::Concat { axis: a.axis },
        OpKind::Pad(a) => NeuronOpKind::Pad {
            pads: a.pads.clone(),
            value: a.value,
        },
        OpKind::BatchFlatten => NeuronOpKind::BatchFlatten,
        OpKind::QnnQuantize(_) => NeuronOpKind::Quantize,
        OpKind::QnnDequantize(_) => NeuronOpKind::Dequantize,
        OpKind::QnnRequantize(_) => NeuronOpKind::Requantize,
        other => return Err(NeuronError::UnsupportedOp(other.name().to_string())),
    })
}

/// Generic handler: convert opcode, propagate input quant to the output
/// when the result stays quantized (§3.3 forward propagation).
fn h_simple(ctx: &mut Ctx, e: &Expr, op: &OpKind) -> Result<(), NeuronError> {
    let inputs = ctx.arg_ids(e)?;
    let out_quant = match ctx.types[&e.id].tensor() {
        Some(tt) if tt.dtype.is_quantized() => inputs.first().and_then(|&i| ctx.quant_of(i)),
        _ => None,
    };
    let out = ctx.new_output(e, out_quant)?;
    ctx.push(e, neuron_kind(op)?, inputs, out);
    Ok(())
}

/// conv2d / qnn.conv2d: for the QNN form, stamp the operator-declared
/// params onto input/weight/output tensors.
fn h_conv2d(ctx: &mut Ctx, e: &Expr, op: &OpKind) -> Result<(), NeuronError> {
    let inputs = ctx.arg_ids(e)?;
    let out_quant = if let OpKind::QnnConv2d(a) = op {
        ctx.set_quant(inputs[0], a.input_q);
        ctx.set_quant(inputs[1], a.weight_q);
        Some(a.output_q)
    } else {
        None
    };
    let out = ctx.new_output(e, out_quant)?;
    ctx.push(e, neuron_kind(op)?, inputs, out);
    Ok(())
}

/// dense / qnn.dense.
fn h_dense(ctx: &mut Ctx, e: &Expr, op: &OpKind) -> Result<(), NeuronError> {
    let inputs = ctx.arg_ids(e)?;
    let out_quant = if let OpKind::QnnDense(a) = op {
        ctx.set_quant(inputs[0], a.input_q);
        ctx.set_quant(inputs[1], a.weight_q);
        Some(a.output_q)
    } else {
        None
    };
    let out = ctx.new_output(e, out_quant)?;
    ctx.push(e, neuron_kind(op)?, inputs, out);
    Ok(())
}

/// qnn.quantize / qnn.dequantize / qnn.requantize.
fn h_qnn_unary(ctx: &mut Ctx, e: &Expr, op: &OpKind) -> Result<(), NeuronError> {
    let inputs = ctx.arg_ids(e)?;
    let out_quant = match op {
        OpKind::QnnQuantize(a) => Some(a.out),
        OpKind::QnnDequantize(a) => {
            ctx.set_quant(inputs[0], a.input);
            None
        }
        OpKind::QnnRequantize(a) => {
            ctx.set_quant(inputs[0], a.input);
            Some(a.output)
        }
        _ => None,
    };
    let out = ctx.new_output(e, out_quant)?;
    ctx.push(e, neuron_kind(op)?, inputs, out);
    Ok(())
}

/// qnn.add: both operand params and the result param come from the op.
fn h_qnn_add(ctx: &mut Ctx, e: &Expr, op: &OpKind) -> Result<(), NeuronError> {
    let inputs = ctx.arg_ids(e)?;
    let OpKind::QnnAdd(a) = op else {
        unreachable!("h_qnn_add on {}", op.name())
    };
    ctx.set_quant(inputs[0], a.lhs_q);
    ctx.set_quant(inputs[1], a.rhs_q);
    let out = ctx.new_output(e, Some(a.output_q))?;
    ctx.push(e, neuron_kind(op)?, inputs, out);
    Ok(())
}

/// qnn.concatenate: per-input params plus the result param.
fn h_qnn_concat(ctx: &mut Ctx, e: &Expr, op: &OpKind) -> Result<(), NeuronError> {
    let inputs = ctx.arg_ids(e)?;
    let OpKind::QnnConcatenate(a) = op else {
        unreachable!()
    };
    for (&id, &q) in inputs.iter().zip(&a.input_qs) {
        ctx.set_quant(id, q);
    }
    let out = ctx.new_output(e, Some(a.output_q))?;
    ctx.push(e, neuron_kind(op)?, inputs, out);
    Ok(())
}

/// Ops that neither create nor consume quantization information: their
/// input and output share parameters, in both directions.
fn quant_transparent(kind: &NeuronOpKind) -> bool {
    matches!(
        kind,
        NeuronOpKind::MaxPool2d { .. }
            | NeuronOpKind::AvgPool2d { .. }
            | NeuronOpKind::GlobalAvgPool2d
            | NeuronOpKind::Relu
            | NeuronOpKind::Clip { .. }
            | NeuronOpKind::Reshape { .. }
            | NeuronOpKind::Transpose { .. }
            | NeuronOpKind::Concat { .. }
            | NeuronOpKind::Pad { .. }
            | NeuronOpKind::BatchFlatten
    )
}

/// §3.3 propagation: sweep forward and backward, copying parameters across
/// quantization-transparent ops until no tensor changes. Bounded by the op
/// count, so it always terminates.
pub fn propagate_quant_params(graph: &mut NeuronGraph) {
    for _ in 0..graph.ops.len() + 1 {
        let mut changed = false;
        // Forward: input params flow to outputs.
        for i in 0..graph.ops.len() {
            if !quant_transparent(&graph.ops[i].kind) {
                continue;
            }
            let in_q = graph.ops[i]
                .inputs
                .first()
                .and_then(|&t| graph.tensors[t].quant);
            if let Some(q) = in_q {
                for &o in &graph.ops[i].outputs.clone() {
                    if graph.tensors[o].dtype.is_quantized() && graph.tensors[o].quant.is_none() {
                        graph.tensors[o].quant = Some(q);
                        changed = true;
                    }
                }
            }
        }
        // Backward: output params flow to inputs ("we pass the output
        // quantization parameters directly to the input").
        for i in (0..graph.ops.len()).rev() {
            if !quant_transparent(&graph.ops[i].kind) {
                continue;
            }
            let out_q = graph.ops[i]
                .outputs
                .first()
                .and_then(|&t| graph.tensors[t].quant);
            if let Some(q) = out_q {
                for &t in &graph.ops[i].inputs.clone() {
                    if graph.tensors[t].dtype.is_quantized() && graph.tensors[t].quant.is_none() {
                        graph.tensors[t].quant = Some(q);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// Convert a (partitioned) Relay function into a Neuron graph.
pub fn convert_function(func: &Function) -> Result<NeuronGraph, NeuronError> {
    let _span = tvmnp_telemetry::span!("neuropilot.convert");
    // Type the function in isolation.
    let module = Module::from_main(Function::new(func.params.clone(), func.body.clone()));
    let types: TypeMap =
        infer_types(&module).map_err(|e| NeuronError::Conversion(e.to_string()))?;

    let mut ctx = Ctx {
        graph: NeuronGraph::default(),
        node_entry_dict: HashMap::new(),
        types: &types,
    };

    // Parameters become graph inputs, in declared order (paper visit_var).
    for p in &func.params {
        if let ExprKind::Var(v) = &p.kind {
            let id = ctx.graph.add_tensor(NeuronTensor {
                name: v.name.clone(),
                shape: v.ty.shape.clone(),
                dtype: v.ty.dtype,
                quant: None,
                data: None,
            });
            ctx.graph.inputs.push(id);
            ctx.node_entry_dict.insert(
                p.id,
                NodeEntry {
                    inputs: vec![id],
                    outputs: vec![id],
                },
            );
        } else {
            return Err(NeuronError::Conversion(
                "function parameter is not a Var".into(),
            ));
        }
    }

    // Post-order DFS over the AST (Listing 1's traversal).
    for e in topo_order(&func.body) {
        if ctx.node_entry_dict.contains_key(&e.id) {
            continue;
        }
        match &e.kind {
            ExprKind::Var(v) => {
                return Err(NeuronError::Conversion(format!(
                    "free variable '{}'",
                    v.name
                )));
            }
            ExprKind::Constant(c) => {
                let id = ctx.graph.add_tensor(NeuronTensor {
                    name: format!("const_{}", e.id),
                    shape: c.value.shape().clone(),
                    dtype: c.value.dtype(),
                    quant: c.value.quant(),
                    data: Some(c.value.clone()),
                });
                ctx.node_entry_dict.insert(
                    e.id,
                    NodeEntry {
                        inputs: vec![id],
                        outputs: vec![id],
                    },
                );
            }
            ExprKind::Tuple(fields) => {
                // visit_tuple: gather the fields' outputs.
                let mut outputs = Vec::new();
                for f in fields {
                    outputs.extend(ctx.node_entry_dict[&f.id].outputs.clone());
                }
                ctx.node_entry_dict.insert(
                    e.id,
                    NodeEntry {
                        inputs: outputs.clone(),
                        outputs,
                    },
                );
            }
            ExprKind::TupleGetItem(t, i) => {
                let outs = &ctx.node_entry_dict[&t.id].outputs;
                let picked = *outs.get(*i).ok_or_else(|| {
                    NeuronError::Conversion(format!("tuple index {i} out of range"))
                })?;
                ctx.node_entry_dict.insert(
                    e.id,
                    NodeEntry {
                        inputs: vec![picked],
                        outputs: vec![picked],
                    },
                );
            }
            ExprKind::Call(call) => match &call.target {
                CallTarget::Op(op) => {
                    let handler = op_handler_dict()
                        .get(op.name())
                        .ok_or_else(|| NeuronError::UnsupportedOp(op.name().to_string()))?;
                    handler(&mut ctx, &e, op)?;
                }
                CallTarget::Global(g) => {
                    return Err(NeuronError::Conversion(format!(
                        "nested external call @{g} cannot be converted"
                    )));
                }
            },
        }
    }

    ctx.graph.outputs = ctx.node_entry_dict[&func.body.id].outputs.clone();
    propagate_quant_params(&mut ctx.graph);
    ctx.graph.validate().map_err(NeuronError::Conversion)?;
    Ok(ctx.graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvmnp_relay::builder;
    use tvmnp_relay::expr::{call, var};
    use tvmnp_relay::{
        Conv2dAttrs, DequantizeAttrs, Pool2dAttrs, QnnConv2dAttrs, QuantizeAttrs, TensorType,
    };
    use tvmnp_tensor::rng::TensorRng;
    use tvmnp_tensor::DType;

    #[test]
    fn converts_small_cnn() {
        let mut rng = TensorRng::new(5);
        let x = var("x", TensorType::f32([1, 3, 8, 8]));
        let w = rng.uniform_f32([4, 3, 3, 3], -0.5, 0.5);
        let y = builder::softmax(builder::batch_flatten(builder::relu(builder::conv2d(
            x.clone(),
            w,
            Conv2dAttrs::same(1),
        ))));
        let f = Function::new(vec![x], y);
        let g = convert_function(&f).unwrap();
        assert_eq!(g.num_ops(), 4);
        assert_eq!(g.inputs.len(), 1);
        assert_eq!(g.outputs.len(), 1);
        assert_eq!(g.ops[0].kind.name(), "CONV_2D");
        assert_eq!(g.ops.last().unwrap().kind.name(), "SOFTMAX");
    }

    #[test]
    fn unsupported_op_rejected() {
        let x = var("x", TensorType::f32([1, 4]));
        let y = call(OpKind::Exp, vec![x.clone()]);
        let f = Function::new(vec![x], y);
        match convert_function(&f) {
            Err(NeuronError::UnsupportedOp(op)) => assert_eq!(op, "exp"),
            other => panic!("expected UnsupportedOp, got {other:?}"),
        }
    }

    #[test]
    fn qnn_conv_params_become_tensor_oriented() {
        let mut rng = TensorRng::new(6);
        let qx = QuantParams::new(0.02, 128);
        let qw = QuantParams::new(0.005, 0);
        let qy = QuantParams::new(0.05, 100);
        let x = var("x", TensorType::new([1, 3, 8, 8], DType::U8));
        let w = rng.uniform_quantized([4, 3, 3, 3], DType::I8, qw);
        let attrs = QnnConv2dAttrs {
            conv: Conv2dAttrs::same(1),
            input_q: qx,
            weight_q: qw,
            output_q: qy,
            out_dtype: DType::U8,
        };
        let y = call(
            OpKind::QnnConv2d(attrs),
            vec![x.clone(), tvmnp_relay::expr::constant(w)],
        );
        let f = Function::new(vec![x], y);
        let g = convert_function(&f).unwrap();
        // Input var tensor got the operator's input params.
        assert_eq!(g.tensors[g.inputs[0]].quant, Some(qx));
        // Output tensor carries the operator's output params.
        assert_eq!(g.tensors[g.outputs[0]].quant, Some(qy));
        // The op itself carries no quantization attributes at all.
        assert!(matches!(g.ops[0].kind, NeuronOpKind::Conv2d { .. }));
    }

    #[test]
    fn quant_propagates_through_non_qnn_ops() {
        // quantize -> max_pool2d (non-QNN) -> dequantize: the pool's output
        // tensor must inherit the params so dequantize's input matches.
        let qp = QuantParams::new(0.1, 3);
        let x = var("x", TensorType::f32([1, 1, 4, 4]));
        let q = call(
            OpKind::QnnQuantize(QuantizeAttrs {
                out: qp,
                out_dtype: DType::U8,
            }),
            vec![x.clone()],
        );
        let pool = call(OpKind::MaxPool2d(Pool2dAttrs::square(2)), vec![q]);
        let d = call(
            OpKind::QnnDequantize(DequantizeAttrs { input: qp }),
            vec![pool],
        );
        let f = Function::new(vec![x], d);
        let g = convert_function(&f).unwrap();
        // Every quantized tensor in the graph carries params (validated),
        // and the pool output specifically inherited qp.
        let pool_out = g.ops[1].outputs[0];
        assert_eq!(g.tensors[pool_out].quant, Some(qp));
    }

    #[test]
    fn backward_propagation_fills_quantized_graph_inputs() {
        // A quantized graph input flows through reshape before any QNN op
        // declares parameters; backward propagation must fill it.
        let qp = QuantParams::new(0.25, 10);
        let x = var("x", TensorType::new([1, 8], DType::U8));
        let r = builder::reshape(x.clone(), vec![1, 8]);
        let d = call(
            OpKind::QnnDequantize(DequantizeAttrs { input: qp }),
            vec![r],
        );
        let f = Function::new(vec![x], d);
        let g = convert_function(&f).unwrap();
        assert_eq!(g.tensors[g.inputs[0]].quant, Some(qp));
    }

    #[test]
    fn constants_are_captured_with_payload() {
        let mut rng = TensorRng::new(8);
        let x = var("x", TensorType::f32([1, 4]));
        let w = rng.uniform_f32([2, 4], -1.0, 1.0);
        let y = builder::dense(x.clone(), w.clone());
        let g = convert_function(&Function::new(vec![x], y)).unwrap();
        let weight_slot = g.ops[0].inputs[1];
        assert!(g.tensors[weight_slot].is_const());
        assert!(g.tensors[weight_slot].data.as_ref().unwrap().bit_eq(&w));
    }
}
