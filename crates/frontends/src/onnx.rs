//! ONNX frontend: `relay.frontend.from_onnx(model, shape_dict)`.
//!
//! The input mirrors an ONNX protobuf: a graph of typed nodes over string
//! value names, with weights in an initializer table. ONNX is already
//! `NCHW`/`OIHW`, so no layout conversion is needed — the contrast with
//! the Keras/TFLite importers is itself framework-faithful.

use crate::{ierr, ImportError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tvmnp_relay::builder;
use tvmnp_relay::expr::{call, var, Expr, Function, Module};
use tvmnp_relay::{ConcatAttrs, Conv2dAttrs, OpKind, Pool2dAttrs, TensorType};
use tvmnp_tensor::{DType, Tensor};

/// Attribute value of an ONNX node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// Single integer.
    Int(i64),
    /// Integer list.
    Ints(Vec<i64>),
    /// Single float.
    Float(f32),
    /// String.
    Str(String),
}

/// One ONNX node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnnxNode {
    /// Operator type (`Conv`, `Relu`, `Gemm`, ...).
    pub op_type: String,
    /// Input value names (activations or initializer names).
    pub inputs: Vec<String>,
    /// Output value names.
    pub outputs: Vec<String>,
    /// Attributes.
    pub attrs: HashMap<String, AttrValue>,
}

impl OnnxNode {
    /// Convenience constructor.
    pub fn new(op_type: &str, inputs: &[&str], outputs: &[&str]) -> Self {
        OnnxNode {
            op_type: op_type.into(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            outputs: outputs.iter().map(|s| s.to_string()).collect(),
            attrs: HashMap::new(),
        }
    }

    /// Attach an attribute.
    pub fn with_attr(mut self, key: &str, v: AttrValue) -> Self {
        self.attrs.insert(key.into(), v);
        self
    }

    fn ints(&self, key: &str) -> Option<Vec<i64>> {
        match self.attrs.get(key) {
            Some(AttrValue::Ints(v)) => Some(v.clone()),
            Some(AttrValue::Int(v)) => Some(vec![*v]),
            _ => None,
        }
    }

    fn float(&self, key: &str, default: f32) -> f32 {
        match self.attrs.get(key) {
            Some(AttrValue::Float(v)) => *v,
            _ => default,
        }
    }
}

/// A typed graph input.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValueInfo {
    /// Value name.
    pub name: String,
    /// Static shape.
    pub shape: Vec<usize>,
}

/// An ONNX model (graph only; opset pinned by construction).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnnxModel {
    /// Nodes in topological order.
    pub nodes: Vec<OnnxNode>,
    /// Graph inputs (excluding initializers).
    pub inputs: Vec<ValueInfo>,
    /// Graph output names.
    pub outputs: Vec<String>,
    /// Weight table.
    pub initializers: HashMap<String, Tensor>,
}

fn pair_attr(v: Option<Vec<i64>>, default: (usize, usize)) -> (usize, usize) {
    match v.as_deref() {
        Some([a]) => (*a as usize, *a as usize),
        Some([a, b]) => (*a as usize, *b as usize),
        _ => default,
    }
}

/// Import an ONNX model into Relay. Inputs are float32.
pub fn from_onnx(model: &OnnxModel) -> Result<Module, ImportError> {
    let _span = tvmnp_telemetry::span!("frontend.import", "framework" => "onnx");
    let mut env: HashMap<String, Expr> = HashMap::new();
    let mut params: Vec<Expr> = Vec::new();
    for vi in &model.inputs {
        let v = var(
            vi.name.clone(),
            TensorType::new(vi.shape.clone(), DType::F32),
        );
        env.insert(vi.name.clone(), v.clone());
        params.push(v);
    }

    let init = |name: &str| -> Result<Tensor, ImportError> {
        model
            .initializers
            .get(name)
            .cloned()
            .ok_or_else(|| ierr(format!("initializer '{name}' missing")))
    };

    for node in &model.nodes {
        let input = |i: usize| -> Result<Expr, ImportError> {
            let name = node
                .inputs
                .get(i)
                .ok_or_else(|| ierr(format!("{}: missing input {i}", node.op_type)))?;
            env.get(name)
                .cloned()
                .ok_or_else(|| ierr(format!("{}: unknown value '{name}'", node.op_type)))
        };

        let out: Expr = match node.op_type.as_str() {
            "Conv" => {
                let strides = pair_attr(node.ints("strides"), (1, 1));
                let dilation = pair_attr(node.ints("dilations"), (1, 1));
                let groups = node
                    .ints("group")
                    .and_then(|v| v.first().copied())
                    .unwrap_or(1) as usize;
                let pads = node.ints("pads").unwrap_or(vec![0, 0, 0, 0]);
                let padding = match pads.as_slice() {
                    [t, l, b, r] => (*t as usize, *l as usize, *b as usize, *r as usize),
                    [p] => (*p as usize, *p as usize, *p as usize, *p as usize),
                    _ => return Err(ierr("Conv: bad pads attribute")),
                };
                let attrs = Conv2dAttrs {
                    strides,
                    padding,
                    dilation,
                    groups,
                };
                let conv = builder::conv2d(input(0)?, init(&node.inputs[1])?, attrs);
                if node.inputs.len() > 2 {
                    builder::bias_add(conv, init(&node.inputs[2])?)
                } else {
                    conv
                }
            }
            "BatchNormalization" => {
                let eps = node.float("epsilon", 1e-5);
                builder::batch_norm(
                    input(0)?,
                    init(&node.inputs[1])?,
                    init(&node.inputs[2])?,
                    init(&node.inputs[3])?,
                    init(&node.inputs[4])?,
                    eps,
                )
            }
            "Relu" => builder::relu(input(0)?),
            "LeakyRelu" => builder::leaky_relu(input(0)?, node.float("alpha", 0.01)),
            "Sigmoid" => builder::sigmoid(input(0)?),
            "Tanh" => call(OpKind::Tanh, vec![input(0)?]),
            "Exp" => call(OpKind::Exp, vec![input(0)?]),
            "MaxPool" | "AveragePool" => {
                let kernel = pair_attr(node.ints("kernel_shape"), (2, 2));
                let strides = pair_attr(node.ints("strides"), kernel);
                let pads = node.ints("pads").unwrap_or(vec![0, 0, 0, 0]);
                let padding = match pads.as_slice() {
                    [t, l, b, r] => (*t as usize, *l as usize, *b as usize, *r as usize),
                    _ => (0, 0, 0, 0),
                };
                let attrs = Pool2dAttrs {
                    kernel,
                    strides,
                    padding,
                    count_include_pad: false,
                };
                if node.op_type == "MaxPool" {
                    builder::max_pool2d(input(0)?, attrs)
                } else {
                    builder::avg_pool2d(input(0)?, attrs)
                }
            }
            "GlobalAveragePool" => builder::global_avg_pool2d(input(0)?),
            "Concat" => {
                let axis = node
                    .ints("axis")
                    .and_then(|v| v.first().copied())
                    .unwrap_or(1) as usize;
                let parts = node
                    .inputs
                    .iter()
                    .map(|n| {
                        env.get(n)
                            .cloned()
                            .ok_or_else(|| ierr(format!("Concat: unknown value '{n}'")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                call(OpKind::Concatenate(ConcatAttrs { axis }), parts)
            }
            "Add" => builder::add(input(0)?, input(1)?),
            "Mul" => builder::multiply(input(0)?, input(1)?),
            "Flatten" => builder::batch_flatten(input(0)?),
            "Gemm" => {
                // y = x @ W^T + b; ONNX stores W as [units, in] with transB=1
                // (the standard classifier export).
                let d = builder::dense(input(0)?, init(&node.inputs[1])?);
                if node.inputs.len() > 2 {
                    builder::bias_add(d, init(&node.inputs[2])?)
                } else {
                    d
                }
            }
            "Softmax" => builder::softmax(input(0)?),
            "Dropout" => builder::dropout(input(0)?),
            other => return Err(ierr(format!("unmapped ONNX op '{other}'"))),
        };
        env.insert(node.outputs[0].clone(), out);
    }

    let outs = model
        .outputs
        .iter()
        .map(|n| {
            env.get(n)
                .cloned()
                .ok_or_else(|| ierr(format!("output '{n}' never produced")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let body = if outs.len() == 1 {
        outs.into_iter().next().unwrap()
    } else {
        tvmnp_relay::expr::tuple(outs)
    };
    let module = Module::from_main(Function::new(params, body));
    tvmnp_relay::infer_types(&module)
        .map_err(|e| ierr(format!("imported module ill-typed: {e}")))?;
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;
    use tvmnp_relay::interp::run_module;
    use tvmnp_tensor::rng::TensorRng;

    fn tiny_onnx() -> OnnxModel {
        let mut rng = TensorRng::new(91);
        let mut initializers = HashMap::new();
        initializers.insert("w1".to_string(), rng.uniform_f32([4, 3, 3, 3], -0.4, 0.4));
        initializers.insert("b1".to_string(), rng.uniform_f32([4], -0.1, 0.1));
        initializers.insert("fc_w".to_string(), rng.uniform_f32([5, 4], -0.3, 0.3));
        OnnxModel {
            nodes: vec![
                OnnxNode::new("Conv", &["x", "w1", "b1"], &["c1"])
                    .with_attr("pads", AttrValue::Ints(vec![1, 1, 1, 1])),
                OnnxNode::new("Relu", &["c1"], &["r1"]),
                OnnxNode::new("GlobalAveragePool", &["r1"], &["g1"]),
                OnnxNode::new("Flatten", &["g1"], &["f1"]),
                OnnxNode::new("Gemm", &["f1", "fc_w"], &["logits"]),
                OnnxNode::new("Softmax", &["logits"], &["probs"]),
            ],
            inputs: vec![ValueInfo {
                name: "x".into(),
                shape: vec![1, 3, 8, 8],
            }],
            outputs: vec!["probs".into()],
            initializers,
        }
    }

    #[test]
    fn imports_and_runs() {
        let m = from_onnx(&tiny_onnx()).unwrap();
        let mut rng = TensorRng::new(92);
        let mut inputs = Map::new();
        inputs.insert("x".to_string(), rng.uniform_f32([1, 3, 8, 8], -1.0, 1.0));
        let out = run_module(&m, &inputs).unwrap();
        assert_eq!(out.shape().dims(), &[1, 5]);
        let s: f32 = out.as_f32().unwrap().iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn missing_initializer_rejected() {
        let mut m = tiny_onnx();
        m.initializers.remove("fc_w");
        assert!(from_onnx(&m).is_err());
    }

    #[test]
    fn unmapped_op_rejected() {
        let mut m = tiny_onnx();
        m.nodes.push(OnnxNode::new("LSTM", &["probs"], &["bad"]));
        m.outputs = vec!["bad".into()];
        assert!(from_onnx(&m).unwrap_err().0.contains("LSTM"));
    }

    #[test]
    fn multi_output_graph() {
        let mut m = tiny_onnx();
        m.outputs = vec!["logits".into(), "probs".into()];
        let module = from_onnx(&m).unwrap();
        let ty = tvmnp_relay::infer_types(&module).unwrap();
        assert!(matches!(
            ty[&module.main().body.id],
            tvmnp_relay::Type::Tuple(_)
        ));
    }
}
