//! Darknet frontend: `relay.frontend.from_darknet(net, dtype, shape)`.
//!
//! The input mirrors Darknet's two artifacts: an INI-style `.cfg` (a list
//! of sections with string key/value pairs) and a flat `.weights` float
//! blob consumed sequentially in layer order — for a convolutional layer
//! with batch normalization: biases, BN scales, BN rolling means, BN
//! rolling variances, then the convolution kernel (`OIHW`). This is the
//! YOLOv3 path of the paper's Listing 3.

use crate::{ierr, ImportError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tvmnp_relay::builder;
use tvmnp_relay::expr::{call, var, Expr, Function, Module};
use tvmnp_relay::{ConcatAttrs, Conv2dAttrs, OpKind, Pool2dAttrs, Resize2dAttrs, TensorType};
use tvmnp_tensor::{DType, Tensor};

/// One `[section]` of a Darknet cfg.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Section {
    /// Section kind: `net`, `convolutional`, `maxpool`, `upsample`,
    /// `route`, `shortcut`, `yolo`.
    pub kind: String,
    /// Raw key/value options.
    pub options: HashMap<String, String>,
}

impl Section {
    /// Convenience constructor.
    pub fn new(kind: &str) -> Self {
        Section {
            kind: kind.into(),
            options: HashMap::new(),
        }
    }

    /// Attach an option.
    pub fn with(mut self, key: &str, value: impl ToString) -> Self {
        self.options.insert(key.into(), value.to_string());
        self
    }

    fn int(&self, key: &str, default: i64) -> i64 {
        self.options
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn str(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }
}

/// A Darknet network: parsed cfg sections + the flat weight blob.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DarknetNet {
    /// Sections, the first being `[net]`.
    pub sections: Vec<Section>,
    /// The `.weights` payload: one flat float array.
    pub weights: Vec<f32>,
}

/// Sequential reader over the flat weight blob.
struct WeightReader<'a> {
    data: &'a [f32],
    pos: usize,
}

impl<'a> WeightReader<'a> {
    fn take(&mut self, shape: &[usize]) -> Result<Tensor, ImportError> {
        let n: usize = shape.iter().product();
        if self.pos + n > self.data.len() {
            return Err(ierr(format!(
                "weight blob exhausted: need {n} floats at offset {}, blob has {}",
                self.pos,
                self.data.len()
            )));
        }
        let t = Tensor::from_f32(shape.to_vec(), self.data[self.pos..self.pos + n].to_vec())
            .map_err(|e| ierr(e.to_string()))?;
        self.pos += n;
        Ok(t)
    }
}

fn activation(e: Expr, name: &str) -> Result<Expr, ImportError> {
    Ok(match name {
        "linear" => e,
        "leaky" => builder::leaky_relu(e, 0.1),
        "relu" => builder::relu(e),
        "logistic" => builder::sigmoid(e),
        other => return Err(ierr(format!("unknown darknet activation '{other}'"))),
    })
}

/// Import a Darknet network. Produces a single-output module when the cfg
/// has one `[yolo]`/terminal layer, or a tuple of all yolo outputs.
pub fn from_darknet(net: &DarknetNet) -> Result<Module, ImportError> {
    let _span = tvmnp_telemetry::span!("frontend.import", "framework" => "darknet");
    let mut sections = net.sections.iter();
    let head = sections
        .next()
        .ok_or_else(|| ierr("cfg has no [net] section"))?;
    if head.kind != "net" {
        return Err(ierr(format!(
            "first section must be [net], got [{}]",
            head.kind
        )));
    }
    let c = head.int("channels", 3) as usize;
    let h = head.int("height", 416) as usize;
    let w = head.int("width", 416) as usize;

    let input = var("data", TensorType::new([1, c, h, w], DType::F32));
    let mut reader = WeightReader {
        data: &net.weights,
        pos: 0,
    };
    // Per-layer outputs (Darknet layers index into this for route/shortcut).
    let mut layer_out: Vec<Expr> = Vec::new();
    let mut layer_channels: Vec<usize> = Vec::new();
    let mut yolo_outputs: Vec<Expr> = Vec::new();
    let mut cur = input.clone();
    let mut cur_c = c;

    for (li, s) in sections.enumerate() {
        match s.kind.as_str() {
            "convolutional" => {
                let filters = s.int("filters", 1) as usize;
                let size = s.int("size", 1) as usize;
                let stride = s.int("stride", 1) as usize;
                let pad = if s.int("pad", 0) == 1 {
                    size / 2
                } else {
                    s.int("padding", 0) as usize
                };
                let bn = s.int("batch_normalize", 0) == 1;
                // Darknet weight order: biases, [bn params], kernel.
                let bias = reader.take(&[filters])?;
                let bn_params = if bn {
                    Some((
                        reader.take(&[filters])?,
                        reader.take(&[filters])?,
                        reader.take(&[filters])?,
                    ))
                } else {
                    None
                };
                let kernel = reader.take(&[filters, cur_c, size, size])?;
                let attrs = Conv2dAttrs {
                    strides: (stride, stride),
                    padding: (pad, pad, pad, pad),
                    dilation: (1, 1),
                    groups: 1,
                };
                let mut e = builder::conv2d(cur.clone(), kernel, attrs);
                if let Some((scales, means, vars)) = bn_params {
                    // Darknet applies BN then bias: y = scale*(x-mean)/sqrt(var+eps) + bias
                    e = builder::batch_norm(e, scales, bias, means, vars, 1e-5);
                } else {
                    e = builder::bias_add(e, bias);
                }
                e = activation(e, s.str("activation").unwrap_or("linear"))?;
                cur = e;
                cur_c = filters;
            }
            "maxpool" => {
                let size = s.int("size", 2) as usize;
                let stride = s.int("stride", size as i64) as usize;
                let attrs = Pool2dAttrs {
                    kernel: (size, size),
                    strides: (stride, stride),
                    padding: (0, 0, 0, 0),
                    count_include_pad: false,
                };
                cur = builder::max_pool2d(cur, attrs);
            }
            "upsample" => {
                let stride = s.int("stride", 2) as usize;
                let ty = builder::expr_type(&cur).map_err(|e| ierr(e.to_string()))?;
                let d = ty.as_tensor().shape.dims().to_vec();
                cur = call(
                    OpKind::Resize2d(Resize2dAttrs {
                        out_h: d[2] * stride,
                        out_w: d[3] * stride,
                        bilinear: false,
                    }),
                    vec![cur],
                );
            }
            "route" => {
                let layers: Vec<isize> = s
                    .str("layers")
                    .ok_or_else(|| ierr("route section needs 'layers'"))?
                    .split(',')
                    .map(|v| {
                        v.trim()
                            .parse()
                            .map_err(|_| ierr(format!("bad route index '{v}'")))
                    })
                    .collect::<Result<_, _>>()?;
                let resolve = |rel: isize| -> Result<usize, ImportError> {
                    let idx = if rel < 0 { li as isize + rel } else { rel };
                    if idx < 0 || idx as usize >= layer_out.len() {
                        return Err(ierr(format!(
                            "route index {rel} out of range at layer {li}"
                        )));
                    }
                    Ok(idx as usize)
                };
                if layers.len() == 1 {
                    let i = resolve(layers[0])?;
                    cur = layer_out[i].clone();
                    cur_c = layer_channels[i];
                } else {
                    let idxs = layers
                        .iter()
                        .map(|&l| resolve(l))
                        .collect::<Result<Vec<_>, _>>()?;
                    let parts: Vec<Expr> = idxs.iter().map(|&i| layer_out[i].clone()).collect();
                    cur_c = idxs.iter().map(|&i| layer_channels[i]).sum();
                    cur = call(OpKind::Concatenate(ConcatAttrs { axis: 1 }), parts);
                }
            }
            "shortcut" => {
                let from: isize = s
                    .str("from")
                    .ok_or_else(|| ierr("shortcut section needs 'from'"))?
                    .trim()
                    .parse()
                    .map_err(|_| ierr("bad shortcut index"))?;
                let idx = if from < 0 { li as isize + from } else { from };
                if idx < 0 || idx as usize >= layer_out.len() {
                    return Err(ierr(format!("shortcut index {from} out of range")));
                }
                cur = builder::add(cur, layer_out[idx as usize].clone());
                cur = activation(cur, s.str("activation").unwrap_or("linear"))?;
            }
            "yolo" => {
                // Detection head: box confidences and class scores pass a
                // logistic; this stays on the output in Darknet order.
                cur = builder::sigmoid(cur.clone());
                yolo_outputs.push(cur.clone());
            }
            other => return Err(ierr(format!("unmapped darknet section [{other}]"))),
        }
        layer_out.push(cur.clone());
        layer_channels.push(cur_c);
    }

    let body = match yolo_outputs.len() {
        0 => cur,
        1 => yolo_outputs
            .pop()
            .ok_or_else(|| ierr("yolo head vanished while assembling outputs"))?,
        _ => tvmnp_relay::expr::tuple(yolo_outputs),
    };
    let module = Module::from_main(Function::new(vec![input], body));
    tvmnp_relay::infer_types(&module)
        .map_err(|e| ierr(format!("imported module ill-typed: {e}")))?;
    Ok(module)
}

/// Count of floats a convolutional section consumes (for blob sizing).
pub fn conv_weight_count(in_c: usize, filters: usize, size: usize, bn: bool) -> usize {
    filters + if bn { 3 * filters } else { 0 } + filters * in_c * size * size
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;
    use tvmnp_relay::interp::run_module;
    use tvmnp_tensor::rng::TensorRng;

    fn tiny_cfg() -> DarknetNet {
        let n_weights = conv_weight_count(3, 8, 3, true) + conv_weight_count(8, 8, 3, false);
        let mut rng = TensorRng::new(81);
        // Positive values: rolling variances live in this blob and must be > 0.
        let weights = rng
            .uniform_f32([n_weights], 0.01, 0.4)
            .as_f32()
            .unwrap()
            .to_vec();
        DarknetNet {
            sections: vec![
                Section::new("net")
                    .with("channels", 3)
                    .with("height", 16)
                    .with("width", 16),
                Section::new("convolutional")
                    .with("filters", 8)
                    .with("size", 3)
                    .with("stride", 1)
                    .with("pad", 1)
                    .with("batch_normalize", 1)
                    .with("activation", "leaky"),
                Section::new("maxpool").with("size", 2).with("stride", 2),
                Section::new("convolutional")
                    .with("filters", 8)
                    .with("size", 3)
                    .with("stride", 1)
                    .with("pad", 1)
                    .with("activation", "linear"),
                Section::new("yolo"),
            ],
            weights,
        }
    }

    #[test]
    fn imports_and_runs_tiny_yolo() {
        let net = tiny_cfg();
        let m = from_darknet(&net).unwrap();
        let mut rng = TensorRng::new(82);
        let mut inputs = Map::new();
        inputs.insert(
            "data".to_string(),
            rng.uniform_f32([1, 3, 16, 16], -1.0, 1.0),
        );
        let out = run_module(&m, &inputs).unwrap();
        assert_eq!(out.shape().dims(), &[1, 8, 8, 8]);
        // Sigmoid head: all outputs in (0, 1).
        assert!(out
            .as_f32()
            .unwrap()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn weight_blob_exhaustion_detected() {
        let mut net = tiny_cfg();
        net.weights.truncate(10);
        assert!(from_darknet(&net).is_err());
    }

    #[test]
    fn route_concat_channels() {
        // conv(4) -> conv(6) -> route[-1,-2] = 10 channels.
        let n = conv_weight_count(3, 4, 1, false) + conv_weight_count(4, 6, 1, false);
        let mut rng = TensorRng::new(83);
        let weights = rng.uniform_f32([n], -0.3, 0.3).as_f32().unwrap().to_vec();
        let net = DarknetNet {
            sections: vec![
                Section::new("net")
                    .with("channels", 3)
                    .with("height", 4)
                    .with("width", 4),
                Section::new("convolutional")
                    .with("filters", 4)
                    .with("size", 1)
                    .with("activation", "linear"),
                Section::new("convolutional")
                    .with("filters", 6)
                    .with("size", 1)
                    .with("activation", "linear"),
                Section::new("route").with("layers", "-1,-2"),
            ],
            weights,
        };
        let m = from_darknet(&net).unwrap();
        let mut inputs = Map::new();
        inputs.insert("data".to_string(), Tensor::zeros_f32([1, 3, 4, 4]));
        let out = run_module(&m, &inputs).unwrap();
        assert_eq!(out.shape().dims(), &[1, 10, 4, 4]);
    }

    #[test]
    fn shortcut_residual() {
        // conv(3) -> conv(3) -> shortcut from -2 (residual add).
        let n = 2 * conv_weight_count(3, 3, 1, false);
        let mut rng = TensorRng::new(84);
        let weights = rng.uniform_f32([n], -0.3, 0.3).as_f32().unwrap().to_vec();
        let net = DarknetNet {
            sections: vec![
                Section::new("net")
                    .with("channels", 3)
                    .with("height", 4)
                    .with("width", 4),
                Section::new("convolutional")
                    .with("filters", 3)
                    .with("size", 1)
                    .with("activation", "linear"),
                Section::new("convolutional")
                    .with("filters", 3)
                    .with("size", 1)
                    .with("activation", "linear"),
                Section::new("shortcut")
                    .with("from", "-2")
                    .with("activation", "linear"),
            ],
            weights,
        };
        let m = from_darknet(&net).unwrap();
        assert!(tvmnp_relay::visit::topo_order(&m.main().body)
            .iter()
            .any(|e| e.op().map(|o| o.name() == "add").unwrap_or(false)));
    }

    #[test]
    fn upsample_uses_resize() {
        let n = conv_weight_count(3, 2, 1, false);
        let mut rng = TensorRng::new(85);
        let weights = rng.uniform_f32([n], -0.3, 0.3).as_f32().unwrap().to_vec();
        let net = DarknetNet {
            sections: vec![
                Section::new("net")
                    .with("channels", 3)
                    .with("height", 4)
                    .with("width", 4),
                Section::new("convolutional")
                    .with("filters", 2)
                    .with("size", 1)
                    .with("activation", "linear"),
                Section::new("upsample").with("stride", 2),
            ],
            weights,
        };
        let m = from_darknet(&net).unwrap();
        let mut inputs = Map::new();
        inputs.insert("data".to_string(), Tensor::zeros_f32([1, 3, 4, 4]));
        let out = run_module(&m, &inputs).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 8, 8]);
    }
}
