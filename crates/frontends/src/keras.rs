//! Keras frontend: `relay.frontend.from_keras(model, shape_dict)`.
//!
//! The input is a Keras `Sequential` model description — exactly the shape
//! of the paper's emotion-detection model (Listing 4): stacked `Conv2D`,
//! `MaxPooling2D`, `Dropout`, `Flatten`, `Dense` layers with string
//! activations. Keras stores conv kernels `HWIO` and dense kernels
//! `[in, units]`; the importer transposes both into Relay's layouts, as
//! TVM's Keras frontend does.

use crate::{ierr, ImportError};
use serde::{Deserialize, Serialize};
use tvmnp_relay::builder;
use tvmnp_relay::expr::{var, Expr, Function, Module};
use tvmnp_relay::{Conv2dAttrs, Pool2dAttrs, TensorType};
use tvmnp_tensor::kernels::transpose;
use tvmnp_tensor::{DType, Tensor};

/// Activation attached to a Keras layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// No activation.
    Linear,
    /// ReLU.
    Relu,
    /// Softmax (classification heads).
    Softmax,
    /// Sigmoid.
    Sigmoid,
    /// Tanh.
    Tanh,
}

/// One layer of a `Sequential` model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum KerasLayer {
    /// `Conv2D(filters, kernel_size, activation=...)`, valid padding,
    /// kernel stored `HWIO`.
    Conv2D {
        /// Number of filters.
        filters: usize,
        /// Kernel size (h, w).
        kernel_size: (usize, usize),
        /// Fused activation.
        activation: Activation,
        /// `same` (true) or `valid` (false) padding.
        same_padding: bool,
        /// Kernel tensor, `HWIO`.
        kernel: Tensor,
        /// Bias, `[filters]`.
        bias: Tensor,
    },
    /// `MaxPooling2D(pool_size)`.
    MaxPooling2D {
        /// Pool window (h, w); stride equals the window.
        pool_size: (usize, usize),
    },
    /// `Dropout(rate)` — inference identity.
    Dropout {
        /// Drop rate (ignored at inference).
        rate: f32,
    },
    /// `Flatten()`.
    Flatten,
    /// `Dense(units, activation=...)`, kernel stored `[in, units]`.
    Dense {
        /// Output width.
        units: usize,
        /// Fused activation.
        activation: Activation,
        /// Kernel tensor, `[in_features, units]`.
        kernel: Tensor,
        /// Bias, `[units]`.
        bias: Tensor,
    },
}

/// A Keras `Sequential` model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KerasModel {
    /// Input shape as Keras sees it: `(h, w, channels)` — channels last.
    pub input_shape: (usize, usize, usize),
    /// Layers in order.
    pub layers: Vec<KerasLayer>,
}

fn apply_activation(e: Expr, a: Activation) -> Expr {
    match a {
        Activation::Linear => e,
        Activation::Relu => builder::relu(e),
        Activation::Softmax => builder::softmax(e),
        Activation::Sigmoid => builder::sigmoid(e),
        Activation::Tanh => tvmnp_relay::expr::call(tvmnp_relay::OpKind::Tanh, vec![e]),
    }
}

/// Import a `Sequential` model. The Relay input is `NCHW` float32 named
/// `input_1` (Keras's default input name).
pub fn from_keras(model: &KerasModel) -> Result<Module, ImportError> {
    let _span = tvmnp_telemetry::span!("frontend.import", "framework" => "keras");
    let (h, w, c) = model.input_shape;
    let input = var("input_1", TensorType::new([1, c, h, w], DType::F32));
    let mut e = input.clone();
    for (i, layer) in model.layers.iter().enumerate() {
        e = match layer {
            KerasLayer::Conv2D {
                filters,
                kernel_size,
                activation,
                same_padding,
                kernel,
                bias,
            } => {
                let kd = kernel.shape().dims();
                if kd.len() != 4
                    || kd[0] != kernel_size.0
                    || kd[1] != kernel_size.1
                    || kd[3] != *filters
                {
                    return Err(ierr(format!(
                        "layer {i}: HWIO kernel shape {:?} inconsistent with Conv2D({filters}, {kernel_size:?})",
                        kd
                    )));
                }
                let bd = bias.shape().dims();
                if bd != [*filters] {
                    return Err(ierr(format!(
                        "layer {i}: Conv2D bias shape {bd:?} must be [{filters}] (one per filter)"
                    )));
                }
                // HWIO -> OIHW.
                let w_oihw = transpose(kernel, &[3, 2, 0, 1]).map_err(|e| ierr(e.to_string()))?;
                let pad = if *same_padding { kernel_size.0 / 2 } else { 0 };
                let attrs = Conv2dAttrs {
                    padding: (pad, pad, pad, pad),
                    ..Default::default()
                };
                let conv = builder::conv2d_bias(e, w_oihw, bias.clone(), attrs);
                apply_activation(conv, *activation)
            }
            KerasLayer::MaxPooling2D { pool_size } => {
                let attrs = Pool2dAttrs {
                    kernel: *pool_size,
                    strides: *pool_size,
                    padding: (0, 0, 0, 0),
                    count_include_pad: false,
                };
                builder::max_pool2d(e, attrs)
            }
            KerasLayer::Dropout { .. } => builder::dropout(e),
            KerasLayer::Flatten => builder::batch_flatten(e),
            KerasLayer::Dense {
                units,
                activation,
                kernel,
                bias,
            } => {
                let kd = kernel.shape().dims();
                if kd.len() != 2 || kd[1] != *units {
                    return Err(ierr(format!(
                        "layer {i}: Dense kernel shape {:?} inconsistent with units {units}",
                        kd
                    )));
                }
                let bd = bias.shape().dims();
                if bd != [*units] {
                    return Err(ierr(format!(
                        "layer {i}: Dense bias shape {bd:?} must be [{units}] (one per unit)"
                    )));
                }
                // [in, units] -> [units, in].
                let w_t = transpose(kernel, &[1, 0]).map_err(|e| ierr(e.to_string()))?;
                let d = builder::dense_bias(e, w_t, bias.clone());
                apply_activation(d, *activation)
            }
        };
    }
    let module = Module::from_main(Function::new(vec![input], e));
    tvmnp_relay::infer_types(&module)
        .map_err(|e| ierr(format!("imported module ill-typed: {e}")))?;
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use tvmnp_relay::interp::run_module;
    use tvmnp_tensor::rng::TensorRng;

    fn tiny_keras() -> KerasModel {
        let mut rng = TensorRng::new(61);
        KerasModel {
            input_shape: (8, 8, 1),
            layers: vec![
                KerasLayer::Conv2D {
                    filters: 4,
                    kernel_size: (3, 3),
                    activation: Activation::Relu,
                    same_padding: false,
                    kernel: rng.uniform_f32([3, 3, 1, 4], -0.4, 0.4),
                    bias: rng.uniform_f32([4], -0.1, 0.1),
                },
                KerasLayer::MaxPooling2D { pool_size: (2, 2) },
                KerasLayer::Dropout { rate: 0.25 },
                KerasLayer::Flatten,
                KerasLayer::Dense {
                    units: 7,
                    activation: Activation::Softmax,
                    kernel: rng.uniform_f32([4 * 3 * 3, 7], -0.2, 0.2),
                    bias: rng.uniform_f32([7], -0.1, 0.1),
                },
            ],
        }
    }

    #[test]
    fn imports_and_runs_seven_way_head() {
        let m = from_keras(&tiny_keras()).unwrap();
        let mut rng = TensorRng::new(62);
        let mut inputs = HashMap::new();
        inputs.insert(
            "input_1".to_string(),
            rng.uniform_f32([1, 1, 8, 8], -1.0, 1.0),
        );
        let out = run_module(&m, &inputs).unwrap();
        assert_eq!(out.shape().dims(), &[1, 7]);
        let sum: f32 = out.as_f32().unwrap().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn hwio_kernel_transposed_correctly() {
        // A 1x1 conv with distinct per-channel weights checks the layout
        // conversion numerically.
        let kernel = Tensor::from_f32([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap(); // HWIO
        let model = KerasModel {
            input_shape: (1, 1, 2),
            layers: vec![KerasLayer::Conv2D {
                filters: 2,
                kernel_size: (1, 1),
                activation: Activation::Linear,
                same_padding: false,
                kernel,
                bias: Tensor::from_f32([2], vec![0.0, 0.0]).unwrap(),
            }],
        };
        let m = from_keras(&model).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(
            "input_1".to_string(),
            Tensor::from_f32([1, 2, 1, 1], vec![1.0, 1.0]).unwrap(),
        );
        let out = run_module(&m, &inputs).unwrap();
        // HWIO [1,1,2,2]: out0 = i0*w[0,0,0,0] + i1*w[0,0,1,0] = 1 + 3;
        //                 out1 = i0*w[0,0,0,1] + i1*w[0,0,1,1] = 2 + 4.
        assert_eq!(out.as_f32().unwrap(), &[4.0, 6.0]);
    }

    #[test]
    fn bad_kernel_shape_rejected() {
        let mut model = tiny_keras();
        if let KerasLayer::Conv2D { kernel, .. } = &mut model.layers[0] {
            *kernel = Tensor::zeros_f32([3, 3, 1, 5]);
        }
        assert!(from_keras(&model).is_err());
    }

    #[test]
    fn bad_bias_shape_rejected_with_field_in_message() {
        let mut model = tiny_keras();
        if let KerasLayer::Conv2D { bias, .. } = &mut model.layers[0] {
            *bias = Tensor::zeros_f32([5]); // 4 filters expect [4]
        }
        let err = from_keras(&model).unwrap_err();
        assert!(
            err.to_string().contains("Conv2D bias shape"),
            "error must name the offending field: {err}"
        );
        assert!(err.to_string().contains("layer 0"));

        let mut model = tiny_keras();
        if let KerasLayer::Dense { bias, .. } = &mut model.layers[4] {
            *bias = Tensor::zeros_f32([8]); // 7 units expect [7]
        }
        let err = from_keras(&model).unwrap_err();
        assert!(err.to_string().contains("Dense bias shape"), "{err}");
    }

    #[test]
    fn dropout_does_not_change_output() {
        let mut with = tiny_keras();
        let without = KerasModel {
            input_shape: with.input_shape,
            layers: {
                let mut l = with.layers.clone();
                l.retain(|x| !matches!(x, KerasLayer::Dropout { .. }));
                l
            },
        };
        let mut rng = TensorRng::new(63);
        let x = rng.uniform_f32([1, 1, 8, 8], -1.0, 1.0);
        let mut inputs = HashMap::new();
        inputs.insert("input_1".to_string(), x);
        let a = run_module(&from_keras(&with).unwrap(), &inputs).unwrap();
        let b = run_module(&from_keras(&without).unwrap(), &inputs).unwrap();
        assert!(a.bit_eq(&b));
        with.layers.clear();
    }
}
