//! MXNet frontend: `relay.frontend.from_mxnet(sym, shape, arg_params, ...)`.
//!
//! The input mirrors MXNet's artifact pair: a `symbol.json` graph — a flat
//! node list where weights appear as `"op": "null"` entries and edges are
//! `[node, output]` index pairs — plus a params dictionary. Operator
//! names and string-typed attrs (`kernel="(3, 3)"`) follow MXNet's JSON
//! conventions.

use crate::{ierr, ImportError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tvmnp_relay::builder;
use tvmnp_relay::expr::{call, var, Expr, Function, Module};
use tvmnp_relay::{ConcatAttrs, Conv2dAttrs, OpKind, Pool2dAttrs, TensorType};
use tvmnp_tensor::{DType, Tensor};

/// One node of `symbol.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MxnetNode {
    /// Operator name; `"null"` marks an input or parameter slot.
    pub op: String,
    /// Node name (parameter slots are looked up in the params dict).
    pub name: String,
    /// String-typed attributes, MXNet style (`kernel = "(3, 3)"`).
    #[serde(default)]
    pub attrs: HashMap<String, String>,
    /// Edges: `[node_index, output_index]`.
    #[serde(default)]
    pub inputs: Vec<[usize; 2]>,
}

impl MxnetNode {
    /// Convenience constructor.
    pub fn new(op: &str, name: &str, inputs: Vec<[usize; 2]>) -> Self {
        MxnetNode {
            op: op.into(),
            name: name.into(),
            attrs: HashMap::new(),
            inputs,
        }
    }

    /// Attach an attribute.
    pub fn with_attr(mut self, key: &str, value: &str) -> Self {
        self.attrs.insert(key.into(), value.into());
        self
    }

    fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).map(String::as_str)
    }
}

/// A `symbol.json` graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MxnetSymbol {
    /// Flat node list.
    pub nodes: Vec<MxnetNode>,
    /// Output heads: `[node_index, output_index]`.
    pub heads: Vec<[usize; 2]>,
}

/// Parse an MXNet tuple-string attribute: `"(3, 3)"` → `[3, 3]`.
pub fn parse_tuple(s: &str) -> Result<Vec<usize>, ImportError> {
    let trimmed = s.trim().trim_start_matches('(').trim_end_matches(')');
    trimmed
        .split(',')
        .filter(|p| !p.trim().is_empty())
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| ierr(format!("bad tuple '{s}'")))
        })
        .collect()
}

fn pair(v: &[usize], default: (usize, usize)) -> (usize, usize) {
    match v {
        [a] => (*a, *a),
        [a, b] => (*a, *b),
        _ => default,
    }
}

/// Import a symbol + params pair. `data_shape` types the `data` input.
pub fn from_mxnet(
    symbol: &MxnetSymbol,
    params: &HashMap<String, Tensor>,
    data_shape: &[usize],
) -> Result<Module, ImportError> {
    let _span = tvmnp_telemetry::span!("frontend.import", "framework" => "mxnet");
    // Value per (node, output) — all our ops are single-output.
    let mut env: HashMap<usize, Expr> = HashMap::new();
    let mut fn_params: Vec<Expr> = Vec::new();

    // Weight lookup for a `null` node: params dict by node name.
    let weight = |name: &str| -> Result<Tensor, ImportError> {
        params
            .get(name)
            .cloned()
            .ok_or_else(|| ierr(format!("params dict misses '{name}'")))
    };

    for (idx, node) in symbol.nodes.iter().enumerate() {
        let input = |k: usize| -> Result<Expr, ImportError> {
            let edge = node
                .inputs
                .get(k)
                .ok_or_else(|| ierr(format!("{}: missing input {k}", node.op)))?;
            env.get(&edge[0])
                .cloned()
                .ok_or_else(|| ierr(format!("{}: node {} not materialized", node.op, edge[0])))
        };
        let weight_in = |k: usize| -> Result<Tensor, ImportError> {
            let edge = node
                .inputs
                .get(k)
                .ok_or_else(|| ierr(format!("{}: missing weight input {k}", node.op)))?;
            let src = &symbol.nodes[edge[0]];
            if src.op != "null" {
                return Err(ierr(format!(
                    "{}: weight operand is not a null node",
                    node.op
                )));
            }
            weight(&src.name)
        };

        let out: Option<Expr> = match node.op.as_str() {
            "null" => {
                if node.name == "data" {
                    let v = var("data", TensorType::new(data_shape.to_vec(), DType::F32));
                    fn_params.push(v.clone());
                    Some(v)
                } else {
                    // Parameter slot: consumed via weight_in by its users.
                    None
                }
            }
            "Convolution" => {
                let kernel = parse_tuple(node.attr("kernel").unwrap_or("(1, 1)"))?;
                let stride = parse_tuple(node.attr("stride").unwrap_or("(1, 1)"))?;
                let pad = parse_tuple(node.attr("pad").unwrap_or("(0, 0)"))?;
                let dilate = parse_tuple(node.attr("dilate").unwrap_or("(1, 1)"))?;
                let groups: usize = node
                    .attr("num_group")
                    .unwrap_or("1")
                    .parse()
                    .map_err(|_| ierr("bad num_group"))?;
                let _ = kernel;
                let (ph, pw) = pair(&pad, (0, 0));
                let attrs = Conv2dAttrs {
                    strides: pair(&stride, (1, 1)),
                    padding: (ph, pw, ph, pw),
                    dilation: pair(&dilate, (1, 1)),
                    groups,
                };
                let no_bias = node.attr("no_bias").unwrap_or("False") == "True";
                let conv = builder::conv2d(input(0)?, weight_in(1)?, attrs);
                Some(if no_bias {
                    conv
                } else {
                    builder::bias_add(conv, weight_in(2)?)
                })
            }
            "BatchNorm" => {
                let eps: f32 = node
                    .attr("eps")
                    .unwrap_or("0.001")
                    .parse()
                    .map_err(|_| ierr("bad eps"))?;
                Some(builder::batch_norm(
                    input(0)?,
                    weight_in(1)?,
                    weight_in(2)?,
                    weight_in(3)?,
                    weight_in(4)?,
                    eps,
                ))
            }
            "Activation" => {
                let act = node.attr("act_type").unwrap_or("relu");
                Some(match act {
                    "relu" => builder::relu(input(0)?),
                    "sigmoid" => builder::sigmoid(input(0)?),
                    "tanh" => call(OpKind::Tanh, vec![input(0)?]),
                    other => return Err(ierr(format!("unmapped act_type '{other}'"))),
                })
            }
            "LeakyReLU" => {
                let slope: f32 = node
                    .attr("slope")
                    .unwrap_or("0.25")
                    .parse()
                    .map_err(|_| ierr("bad slope"))?;
                Some(builder::leaky_relu(input(0)?, slope))
            }
            "Pooling" => {
                let kernel = pair(
                    &parse_tuple(node.attr("kernel").unwrap_or("(2, 2)"))?,
                    (2, 2),
                );
                let stride = pair(
                    &parse_tuple(node.attr("stride").unwrap_or("(2, 2)"))?,
                    kernel,
                );
                let pad = pair(&parse_tuple(node.attr("pad").unwrap_or("(0, 0)"))?, (0, 0));
                let global = node.attr("global_pool").unwrap_or("False") == "True";
                let pool_type = node.attr("pool_type").unwrap_or("max");
                Some(if global {
                    builder::global_avg_pool2d(input(0)?)
                } else {
                    let attrs = Pool2dAttrs {
                        kernel,
                        strides: stride,
                        padding: (pad.0, pad.1, pad.0, pad.1),
                        count_include_pad: false,
                    };
                    match pool_type {
                        "max" => builder::max_pool2d(input(0)?, attrs),
                        "avg" => builder::avg_pool2d(input(0)?, attrs),
                        other => return Err(ierr(format!("unmapped pool_type '{other}'"))),
                    }
                })
            }
            "FullyConnected" => {
                // MXNet FC weights are [units, in]; input flattens implicitly.
                let x = builder::batch_flatten(input(0)?);
                let no_bias = node.attr("no_bias").unwrap_or("False") == "True";
                let d = builder::dense(x, weight_in(1)?);
                Some(if no_bias {
                    d
                } else {
                    builder::bias_add(d, weight_in(2)?)
                })
            }
            "Flatten" => Some(builder::batch_flatten(input(0)?)),
            "Concat" => {
                let dim: usize = node
                    .attr("dim")
                    .unwrap_or("1")
                    .parse()
                    .map_err(|_| ierr("bad dim"))?;
                let parts = node
                    .inputs
                    .iter()
                    .map(|e| {
                        env.get(&e[0])
                            .cloned()
                            .ok_or_else(|| ierr(format!("Concat: node {} missing", e[0])))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Some(call(OpKind::Concatenate(ConcatAttrs { axis: dim }), parts))
            }
            "elemwise_add" | "_plus" => Some(builder::add(input(0)?, input(1)?)),
            "elemwise_mul" => Some(builder::multiply(input(0)?, input(1)?)),
            "softmax" | "SoftmaxOutput" => Some(builder::softmax(input(0)?)),
            "Dropout" => Some(builder::dropout(input(0)?)),
            other => return Err(ierr(format!("unmapped MXNet op '{other}'"))),
        };
        if let Some(e) = out {
            env.insert(idx, e);
        }
    }

    let mut outs = symbol
        .heads
        .iter()
        .map(|h| {
            env.get(&h[0])
                .cloned()
                .ok_or_else(|| ierr(format!("head {} missing", h[0])))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let body = match outs.len() {
        0 => return Err(ierr("MXNet symbol lists no heads (field 'heads' is empty)")),
        1 => outs
            .pop()
            .ok_or_else(|| ierr("MXNet head vanished while assembling outputs"))?,
        _ => tvmnp_relay::expr::tuple(outs),
    };
    let module = Module::from_main(Function::new(fn_params, body));
    tvmnp_relay::infer_types(&module)
        .map_err(|e| ierr(format!("imported module ill-typed: {e}")))?;
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;
    use tvmnp_relay::interp::run_module;
    use tvmnp_tensor::rng::TensorRng;

    fn lenet_style() -> (MxnetSymbol, HashMap<String, Tensor>) {
        let mut rng = TensorRng::new(201);
        let mut params = HashMap::new();
        params.insert(
            "conv0_weight".to_string(),
            rng.uniform_f32([8, 1, 3, 3], -0.4, 0.4),
        );
        params.insert("conv0_bias".to_string(), rng.uniform_f32([8], -0.1, 0.1));
        params.insert(
            "fc0_weight".to_string(),
            rng.uniform_f32([10, 8 * 13 * 13], -0.1, 0.1),
        );
        params.insert("fc0_bias".to_string(), rng.uniform_f32([10], -0.1, 0.1));
        let symbol = MxnetSymbol {
            nodes: vec![
                MxnetNode::new("null", "data", vec![]),
                MxnetNode::new("null", "conv0_weight", vec![]),
                MxnetNode::new("null", "conv0_bias", vec![]),
                MxnetNode::new("Convolution", "conv0", vec![[0, 0], [1, 0], [2, 0]])
                    .with_attr("kernel", "(3, 3)")
                    .with_attr("num_filter", "8"),
                MxnetNode::new("Activation", "relu0", vec![[3, 0]]).with_attr("act_type", "relu"),
                MxnetNode::new("Pooling", "pool0", vec![[4, 0]])
                    .with_attr("kernel", "(2, 2)")
                    .with_attr("pool_type", "max"),
                MxnetNode::new("null", "fc0_weight", vec![]),
                MxnetNode::new("null", "fc0_bias", vec![]),
                MxnetNode::new("FullyConnected", "fc0", vec![[5, 0], [6, 0], [7, 0]])
                    .with_attr("num_hidden", "10"),
                MxnetNode::new("SoftmaxOutput", "softmax", vec![[8, 0]]),
            ],
            heads: vec![[9, 0]],
        };
        (symbol, params)
    }

    #[test]
    fn imports_and_runs_lenet() {
        let (symbol, params) = lenet_style();
        let m = from_mxnet(&symbol, &params, &[1, 1, 28, 28]).unwrap();
        let mut rng = TensorRng::new(202);
        let mut inputs = Map::new();
        inputs.insert(
            "data".to_string(),
            rng.uniform_f32([1, 1, 28, 28], -1.0, 1.0),
        );
        let out = run_module(&m, &inputs).unwrap();
        assert_eq!(out.shape().dims(), &[1, 10]);
        let s: f32 = out.as_f32().unwrap().iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn tuple_attr_parsing() {
        assert_eq!(parse_tuple("(3, 3)").unwrap(), vec![3, 3]);
        assert_eq!(parse_tuple("(1,)").unwrap(), vec![1]);
        assert_eq!(parse_tuple("(2, 2, 2)").unwrap(), vec![2, 2, 2]);
        assert!(parse_tuple("(a, b)").is_err());
    }

    #[test]
    fn missing_param_rejected() {
        let (symbol, mut params) = lenet_style();
        params.remove("fc0_weight");
        assert!(from_mxnet(&symbol, &params, &[1, 1, 28, 28]).is_err());
    }

    #[test]
    fn global_pooling_maps() {
        let mut rng = TensorRng::new(203);
        let mut params = HashMap::new();
        params.insert("w".to_string(), rng.uniform_f32([4, 2, 1, 1], -0.5, 0.5));
        let symbol = MxnetSymbol {
            nodes: vec![
                MxnetNode::new("null", "data", vec![]),
                MxnetNode::new("null", "w", vec![]),
                MxnetNode::new("Convolution", "c", vec![[0, 0], [1, 0]])
                    .with_attr("no_bias", "True"),
                MxnetNode::new("Pooling", "gap", vec![[2, 0]])
                    .with_attr("global_pool", "True")
                    .with_attr("pool_type", "avg"),
            ],
            heads: vec![[3, 0]],
        };
        let m = from_mxnet(&symbol, &params, &[1, 2, 8, 8]).unwrap();
        let mut inputs = Map::new();
        inputs.insert("data".to_string(), Tensor::zeros_f32([1, 2, 8, 8]));
        let out = run_module(&m, &inputs).unwrap();
        assert_eq!(out.shape().dims(), &[1, 4, 1, 1]);
    }

    #[test]
    fn unmapped_op_rejected() {
        let symbol = MxnetSymbol {
            nodes: vec![
                MxnetNode::new("null", "data", vec![]),
                MxnetNode::new("RNN", "r", vec![[0, 0]]),
            ],
            heads: vec![[1, 0]],
        };
        let e = from_mxnet(&symbol, &HashMap::new(), &[1, 4]).unwrap_err();
        assert!(e.0.contains("RNN"));
    }
}
