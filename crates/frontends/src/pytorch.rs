//! PyTorch frontend: `relay.frontend.from_pytorch(scripted_model, shape_list)`.
//!
//! The input is a TorchScript-style *traced graph*: a flat list of
//! `aten::*` nodes over `%value` names, with weights held in a state
//! dict — the artifact `torch.jit.trace` produces in the paper's
//! Listing 2 flow.

use crate::{ierr, ImportError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tvmnp_relay::builder;
use tvmnp_relay::expr::{call, var, Expr, Function, Module};
use tvmnp_relay::{ConcatAttrs, Conv2dAttrs, LeakyReluAttrs, OpKind, Pool2dAttrs, TensorType};
use tvmnp_tensor::{DType, Tensor};

/// One traced `aten::*` node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TorchNode {
    /// Operator name (`aten::conv2d`, `aten::relu`, ...).
    pub op: String,
    /// Input value names (`%x`, `%1`, ...). Weight operands reference the
    /// state dict by parameter name instead (`conv1.weight`).
    pub inputs: Vec<String>,
    /// Output value name.
    pub output: String,
    /// Integer attributes (strides, padding, ...), op-specific.
    pub int_attrs: HashMap<String, Vec<i64>>,
    /// Float attributes (eps, negative_slope, ...).
    pub float_attrs: HashMap<String, f64>,
}

impl TorchNode {
    /// Convenience constructor.
    pub fn new(op: &str, inputs: &[&str], output: &str) -> Self {
        TorchNode {
            op: op.to_string(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            output: output.to_string(),
            int_attrs: HashMap::new(),
            float_attrs: HashMap::new(),
        }
    }

    /// Attach an integer-list attribute.
    pub fn with_ints(mut self, key: &str, v: Vec<i64>) -> Self {
        self.int_attrs.insert(key.to_string(), v);
        self
    }

    /// Attach a float attribute.
    pub fn with_float(mut self, key: &str, v: f64) -> Self {
        self.float_attrs.insert(key.to_string(), v);
        self
    }
}

/// A traced TorchScript module: graph + state dict.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TracedModule {
    /// Nodes in trace order.
    pub nodes: Vec<TorchNode>,
    /// Graph input value names.
    pub inputs: Vec<String>,
    /// Graph output value name.
    pub output: String,
    /// State dict: parameter name → tensor.
    pub state_dict: HashMap<String, Tensor>,
}

fn pair(v: &[i64], what: &str) -> Result<(usize, usize), ImportError> {
    match v {
        [a] => Ok((*a as usize, *a as usize)),
        [a, b] => Ok((*a as usize, *b as usize)),
        _ => Err(ierr(format!("expected 1 or 2 ints for {what}, got {v:?}"))),
    }
}

/// Import a traced module. `shape_list` gives `(input_name, shape)` pairs
/// as in TVM's `from_pytorch`; inputs are float32 `NCHW`.
pub fn from_pytorch(
    traced: &TracedModule,
    shape_list: &[(String, Vec<usize>)],
) -> Result<Module, ImportError> {
    let _span = tvmnp_telemetry::span!("frontend.import", "framework" => "pytorch");
    let mut env: HashMap<String, Expr> = HashMap::new();
    let mut params: Vec<Expr> = Vec::new();
    for name in &traced.inputs {
        let (_, shape) = shape_list
            .iter()
            .find(|(n, _)| n == name)
            .ok_or_else(|| ierr(format!("no shape for input '{name}'")))?;
        let v = var(name.clone(), TensorType::new(shape.clone(), DType::F32));
        env.insert(name.clone(), v.clone());
        params.push(v);
    }

    let weight = |name: &str| -> Result<Tensor, ImportError> {
        traced
            .state_dict
            .get(name)
            .cloned()
            .ok_or_else(|| ierr(format!("state dict misses '{name}'")))
    };

    for node in &traced.nodes {
        let input = |i: usize| -> Result<Expr, ImportError> {
            let name = node
                .inputs
                .get(i)
                .ok_or_else(|| ierr(format!("{}: missing input {i}", node.op)))?;
            env.get(name)
                .cloned()
                .ok_or_else(|| ierr(format!("{}: unknown value '{name}'", node.op)))
        };
        let ints = |key: &str| node.int_attrs.get(key).cloned();

        let out: Expr = match node.op.as_str() {
            "aten::conv2d" => {
                let x = input(0)?;
                let w = weight(&node.inputs[1])?;
                let strides = pair(&ints("stride").unwrap_or(vec![1, 1]), "stride")?;
                let (ph, pw) = pair(&ints("padding").unwrap_or(vec![0, 0]), "padding")?;
                let dilation = pair(&ints("dilation").unwrap_or(vec![1, 1]), "dilation")?;
                let groups = ints("groups").and_then(|v| v.first().copied()).unwrap_or(1) as usize;
                let attrs = Conv2dAttrs {
                    strides,
                    padding: (ph, pw, ph, pw),
                    dilation,
                    groups,
                };
                let conv = builder::conv2d(x, w, attrs);
                if node.inputs.len() > 2 && !node.inputs[2].is_empty() {
                    builder::bias_add(conv, weight(&node.inputs[2])?)
                } else {
                    conv
                }
            }
            "aten::batch_norm" => {
                let x = input(0)?;
                let eps = node.float_attrs.get("eps").copied().unwrap_or(1e-5) as f32;
                builder::batch_norm(
                    x,
                    weight(&node.inputs[1])?,
                    weight(&node.inputs[2])?,
                    weight(&node.inputs[3])?,
                    weight(&node.inputs[4])?,
                    eps,
                )
            }
            "aten::relu" => builder::relu(input(0)?),
            "aten::leaky_relu" => {
                let alpha = node
                    .float_attrs
                    .get("negative_slope")
                    .copied()
                    .unwrap_or(0.01) as f32;
                call(OpKind::LeakyRelu(LeakyReluAttrs { alpha }), vec![input(0)?])
            }
            "aten::sigmoid" => builder::sigmoid(input(0)?),
            "aten::tanh" => call(OpKind::Tanh, vec![input(0)?]),
            "aten::max_pool2d" => {
                let kernel = pair(
                    &ints("kernel_size").ok_or_else(|| ierr("max_pool2d needs kernel_size"))?,
                    "kernel",
                )?;
                let strides = match ints("stride") {
                    Some(v) if !v.is_empty() => pair(&v, "stride")?,
                    _ => kernel,
                };
                let (ph, pw) = pair(&ints("padding").unwrap_or(vec![0, 0]), "padding")?;
                let attrs = Pool2dAttrs {
                    kernel,
                    strides,
                    padding: (ph, pw, ph, pw),
                    count_include_pad: false,
                };
                builder::max_pool2d(input(0)?, attrs)
            }
            "aten::avg_pool2d" => {
                let kernel = pair(
                    &ints("kernel_size").ok_or_else(|| ierr("avg_pool2d needs kernel_size"))?,
                    "kernel",
                )?;
                let strides = match ints("stride") {
                    Some(v) if !v.is_empty() => pair(&v, "stride")?,
                    _ => kernel,
                };
                let (ph, pw) = pair(&ints("padding").unwrap_or(vec![0, 0]), "padding")?;
                let attrs = Pool2dAttrs {
                    kernel,
                    strides,
                    padding: (ph, pw, ph, pw),
                    count_include_pad: false,
                };
                builder::avg_pool2d(input(0)?, attrs)
            }
            "aten::adaptive_avg_pool2d" => {
                // Traces in the showcase always target (1, 1).
                builder::global_avg_pool2d(input(0)?)
            }
            "aten::cat" => {
                let dim = ints("dim").and_then(|v| v.first().copied()).unwrap_or(1) as usize;
                let parts = node
                    .inputs
                    .iter()
                    .map(|n| {
                        env.get(n)
                            .cloned()
                            .ok_or_else(|| ierr(format!("cat: unknown '{n}'")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                call(OpKind::Concatenate(ConcatAttrs { axis: dim }), parts)
            }
            "aten::add" => builder::add(input(0)?, input(1)?),
            "aten::mul" => builder::multiply(input(0)?, input(1)?),
            "aten::flatten" => builder::batch_flatten(input(0)?),
            "aten::linear" => {
                let x = input(0)?;
                let w = weight(&node.inputs[1])?;
                let d = builder::dense(x, w);
                if node.inputs.len() > 2 && !node.inputs[2].is_empty() {
                    builder::bias_add(d, weight(&node.inputs[2])?)
                } else {
                    d
                }
            }
            "aten::dropout" => builder::dropout(input(0)?),
            "aten::softmax" => builder::softmax(input(0)?),
            other => return Err(ierr(format!("unmapped aten op '{other}'"))),
        };
        env.insert(node.output.clone(), out);
    }

    let body = env
        .get(&traced.output)
        .cloned()
        .ok_or_else(|| ierr(format!("output value '{}' never produced", traced.output)))?;
    let module = Module::from_main(Function::new(params, body));
    tvmnp_relay::infer_types(&module)
        .map_err(|e| ierr(format!("imported module ill-typed: {e}")))?;
    Ok(module)
}

/// Sanity check: `nn.BatchNorm2d` parameters for one channel count.
pub fn batch_norm_entry(
    state: &mut HashMap<String, Tensor>,
    prefix: &str,
    gamma: Tensor,
    beta: Tensor,
    mean: Tensor,
    var: Tensor,
) {
    state.insert(format!("{prefix}.weight"), gamma);
    state.insert(format!("{prefix}.bias"), beta);
    state.insert(format!("{prefix}.running_mean"), mean);
    state.insert(format!("{prefix}.running_var"), var);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvmnp_relay::interp::run_module;
    use tvmnp_tensor::rng::TensorRng;

    fn traced_cnn() -> TracedModule {
        let mut rng = TensorRng::new(51);
        let mut state = HashMap::new();
        state.insert(
            "conv1.weight".into(),
            rng.uniform_f32([4, 3, 3, 3], -0.4, 0.4),
        );
        state.insert("conv1.bias".into(), rng.uniform_f32([4], -0.1, 0.1));
        state.insert(
            "fc.weight".into(),
            rng.uniform_f32([7, 4 * 4 * 4], -0.2, 0.2),
        );
        TracedModule {
            nodes: vec![
                TorchNode::new("aten::conv2d", &["%x", "conv1.weight", "conv1.bias"], "%1")
                    .with_ints("stride", vec![1, 1])
                    .with_ints("padding", vec![1, 1]),
                TorchNode::new("aten::relu", &["%1"], "%2"),
                TorchNode::new("aten::max_pool2d", &["%2"], "%3")
                    .with_ints("kernel_size", vec![2, 2]),
                TorchNode::new("aten::flatten", &["%3"], "%4"),
                TorchNode::new("aten::linear", &["%4", "fc.weight"], "%5"),
                TorchNode::new("aten::softmax", &["%5"], "%out"),
            ],
            inputs: vec!["%x".into()],
            output: "%out".into(),
            state_dict: state,
        }
    }

    #[test]
    fn imports_and_runs() {
        let traced = traced_cnn();
        let m = from_pytorch(&traced, &[("%x".into(), vec![1, 3, 8, 8])]).unwrap();
        let mut rng = TensorRng::new(52);
        let mut inputs = HashMap::new();
        inputs.insert("%x".to_string(), rng.uniform_f32([1, 3, 8, 8], -1.0, 1.0));
        let out = run_module(&m, &inputs).unwrap();
        assert_eq!(out.shape().dims(), &[1, 7]);
        let sum: f32 = out.as_f32().unwrap().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn missing_weight_rejected() {
        let mut traced = traced_cnn();
        traced.state_dict.remove("fc.weight");
        assert!(from_pytorch(&traced, &[("%x".into(), vec![1, 3, 8, 8])]).is_err());
    }

    #[test]
    fn missing_shape_rejected() {
        let traced = traced_cnn();
        assert!(from_pytorch(&traced, &[]).is_err());
    }

    #[test]
    fn unmapped_op_rejected() {
        let mut traced = traced_cnn();
        traced
            .nodes
            .push(TorchNode::new("aten::einsum", &["%out"], "%bad"));
        traced.output = "%bad".into();
        let e = from_pytorch(&traced, &[("%x".into(), vec![1, 3, 8, 8])]).unwrap_err();
        assert!(e.0.contains("einsum"));
    }

    #[test]
    fn batch_norm_roundtrip() {
        let mut rng = TensorRng::new(53);
        let mut state = HashMap::new();
        state.insert("c.weight".into(), rng.uniform_f32([2, 2, 1, 1], -0.5, 0.5));
        batch_norm_entry(
            &mut state,
            "bn",
            rng.uniform_f32([2], 0.9, 1.1),
            rng.uniform_f32([2], -0.1, 0.1),
            rng.uniform_f32([2], -0.1, 0.1),
            rng.uniform_f32([2], 0.9, 1.1),
        );
        let traced = TracedModule {
            nodes: vec![
                TorchNode::new("aten::conv2d", &["%x", "c.weight"], "%1"),
                TorchNode::new(
                    "aten::batch_norm",
                    &[
                        "%1",
                        "bn.weight",
                        "bn.bias",
                        "bn.running_mean",
                        "bn.running_var",
                    ],
                    "%2",
                )
                .with_float("eps", 1e-5),
            ],
            inputs: vec!["%x".into()],
            output: "%2".into(),
            state_dict: state,
        };
        let m = from_pytorch(&traced, &[("%x".into(), vec![1, 2, 4, 4])]).unwrap();
        // Contains an unfused batch_norm — the op NeuroPilot lacks.
        assert!(tvmnp_relay::visit::topo_order(&m.main().body)
            .iter()
            .any(|e| e.op().map(|o| o.name() == "nn.batch_norm").unwrap_or(false)));
    }
}
