//! # tvmnp-frontends
//!
//! Framework frontends, mirroring `tvm.relay.frontend`.
//!
//! The paper's showcase exists to prove one point: models authored in
//! *different* frameworks (PyTorch, Keras, TFLite, Darknet, ONNX, MXNet…)
//! meet at Relay and from there reach NeuroPilot through one BYOC flow.
//! This crate reproduces that heterogeneity: each sub-module defines a
//! framework-shaped model description — a traced graph for PyTorch, a
//! sequential layer list for Keras, a flat quantized tensor/op buffer for
//! TFLite, a cfg-section list + flat weight blob for Darknet, a node-list
//! proto for ONNX — and an importer that lowers it to a Relay [`Module`].
//!
//! Framework idioms are preserved where they matter to the compiler:
//! * Keras stores conv kernels `HWIO` and activations channels-last; the
//!   importer transposes to Relay's `OIHW`/`NCHW`.
//! * TFLite is *tensor-oriented* quantized (`(scale, zero_point)` per
//!   tensor) and `NHWC`/`OHWI`; the importer synthesizes Relay's
//!   *operator-oriented* QNN attributes — the exact representation gap
//!   §3.3 of the paper later bridges in the other direction.
//! * Darknet weights are one flat float blob consumed in layer order
//!   (bias, then BN stats, then kernel), as the real `.weights` format.
//! * MXNet ships a `symbol.json` node list with string-typed attrs
//!   (`kernel="(3, 3)"`) plus a separate params dict; the importer parses
//!   both, as `relay.frontend.from_mxnet` does.
//!
//! [`Module`]: tvmnp_relay::Module

pub mod darknet;
pub mod keras;
pub mod mxnet;
pub mod onnx;
pub mod pytorch;
pub mod tflite;

use std::fmt;

/// An import failure: the model description is malformed or uses an
/// operator the frontend does not map.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportError(pub String);

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frontend import error: {}", self.0)
    }
}

impl std::error::Error for ImportError {}

pub(crate) fn ierr(msg: impl Into<String>) -> ImportError {
    ImportError(msg.into())
}
