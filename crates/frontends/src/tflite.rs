//! TFLite frontend: `relay.frontend.from_tflite(model, ...)`.
//!
//! The input mirrors a TFLite flatbuffer: a flat tensor table (each tensor
//! carrying its own `(scale, zero_point)` — TFLite is *tensor-oriented*
//! quantized) and an operator list over tensor indices, `NHWC` activations
//! and `OHWI` conv kernels. The importer synthesizes Relay's
//! *operator-oriented* QNN attributes from the producer/consumer tensors
//! and canonicalizes layouts to `NCHW`/`OIHW` (TVM's `ConvertLayout` step
//! for BYOC targets). Paper §3.3 later converts this operator-oriented
//! form back to tensor-oriented Neuron IR — the round trip the QNN flow
//! exists for.

use crate::{ierr, ImportError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tvmnp_relay::builder;
use tvmnp_relay::expr::{call, constant, var, Expr, Function, Module};
use tvmnp_relay::{
    ClipAttrs, Conv2dAttrs, DequantizeAttrs, OpKind, Pool2dAttrs, QnnAddAttrs, QnnConcatAttrs,
    QnnConv2dAttrs, QnnDenseAttrs, QuantizeAttrs, ReshapeAttrs, TensorType,
};
use tvmnp_tensor::kernels::transpose;
use tvmnp_tensor::{DType, QuantParams, Tensor};

/// One tensor slot of the flatbuffer. Shapes use TFLite's own layout
/// semantics (`NHWC` activations, `OHWI` conv filters).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TfliteTensor {
    /// Diagnostic name.
    pub name: String,
    /// Shape in TFLite layout.
    pub shape: Vec<usize>,
    /// Element type.
    pub dtype: DType,
    /// Per-tensor quantization (TFLite's tensor-oriented scheme).
    pub quant: Option<QuantParams>,
    /// Constant payload (weights/bias), in TFLite layout.
    pub data: Option<Tensor>,
}

/// TFLite padding mode.
pub const PADDING_SAME: i64 = 0;
/// TFLite padding mode.
pub const PADDING_VALID: i64 = 1;
/// Fused activation: none.
pub const ACT_NONE: i64 = 0;
/// Fused activation: ReLU.
pub const ACT_RELU: i64 = 1;
/// Fused activation: ReLU6.
pub const ACT_RELU6: i64 = 3;

/// One operator over tensor indices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TfliteOp {
    /// Builtin opcode name (`CONV_2D`, `ADD`, ...).
    pub opcode: String,
    /// Input tensor indices.
    pub inputs: Vec<usize>,
    /// Output tensor indices.
    pub outputs: Vec<usize>,
    /// Builtin options (`stride_h`, `padding`, `fused_activation`, ...).
    pub options: HashMap<String, i64>,
}

impl TfliteOp {
    /// Convenience constructor.
    pub fn new(opcode: &str, inputs: Vec<usize>, outputs: Vec<usize>) -> Self {
        TfliteOp {
            opcode: opcode.into(),
            inputs,
            outputs,
            options: HashMap::new(),
        }
    }

    /// Attach a builtin option.
    pub fn with_opt(mut self, key: &str, v: i64) -> Self {
        self.options.insert(key.into(), v);
        self
    }

    fn opt(&self, key: &str, default: i64) -> i64 {
        self.options.get(key).copied().unwrap_or(default)
    }
}

/// A TFLite model: tensor table + operator list.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TfliteModel {
    /// All tensors.
    pub tensors: Vec<TfliteTensor>,
    /// Operators in execution order.
    pub ops: Vec<TfliteOp>,
    /// Graph input tensor indices.
    pub inputs: Vec<usize>,
    /// Graph output tensor indices.
    pub outputs: Vec<usize>,
}

/// NHWC shape → NCHW shape (rank-4 only; lower ranks pass through).
fn to_nchw(shape: &[usize]) -> Vec<usize> {
    match shape {
        [n, h, w, c] => vec![*n, *c, *h, *w],
        other => other.to_vec(),
    }
}

/// TFLite SAME padding for one spatial dim: `(before, after)`.
fn same_pad(input: usize, kernel: usize, stride: usize) -> (usize, usize) {
    let out = input.div_ceil(stride);
    let total = ((out - 1) * stride + kernel).saturating_sub(input);
    (total / 2, total - total / 2)
}

struct Importer<'m> {
    model: &'m TfliteModel,
    env: HashMap<usize, Expr>,
}

impl Importer<'_> {
    fn tensor(&self, i: usize) -> Result<&TfliteTensor, ImportError> {
        self.model
            .tensors
            .get(i)
            .ok_or_else(|| ierr(format!("tensor index {i} out of range")))
    }

    fn quant(&self, i: usize) -> Result<QuantParams, ImportError> {
        self.tensor(i)?
            .quant
            .ok_or_else(|| ierr(format!("tensor {i} has no quantization parameters")))
    }

    fn expr(&self, i: usize) -> Result<Expr, ImportError> {
        self.env
            .get(&i)
            .cloned()
            .ok_or_else(|| ierr(format!("tensor {i} not yet produced")))
    }

    /// Constant payload of tensor `i`, transposed by `perm` (empty = as-is).
    fn const_expr(&self, i: usize, perm: &[usize]) -> Result<Expr, ImportError> {
        let t = self.tensor(i)?;
        let data = t
            .data
            .clone()
            .ok_or_else(|| ierr(format!("tensor {i} is not constant")))?;
        let data = if perm.is_empty() {
            data
        } else {
            transpose(&data, perm).map_err(|e| ierr(e.to_string()))?
        };
        Ok(constant(data))
    }

    fn fused_activation(&self, e: Expr, act: i64) -> Result<Expr, ImportError> {
        Ok(match act {
            ACT_NONE => e,
            ACT_RELU => builder::relu(e),
            ACT_RELU6 => call(OpKind::Clip(ClipAttrs { min: 0.0, max: 6.0 }), vec![e]),
            other => return Err(ierr(format!("unknown fused activation {other}"))),
        })
    }

    fn conv2d(&mut self, op: &TfliteOp, depthwise: bool) -> Result<(), ImportError> {
        let x_idx = op.inputs[0];
        let f_idx = op.inputs[1];
        let x = self.expr(x_idx)?;
        let xt = self.tensor(x_idx)?;
        let ft = self.tensor(f_idx)?;
        let (in_h, in_w, in_c) = match xt.shape.as_slice() {
            [_, h, w, c] => (*h, *w, *c),
            other => return Err(ierr(format!("conv input must be NHWC, got {other:?}"))),
        };
        // OHWI (conv) or 1HWC (depthwise) filter.
        let fd = ft.shape.clone();
        let (kh, kw, filter, groups) = if depthwise {
            // [1, kh, kw, C] -> [C, 1, kh, kw]
            (fd[1], fd[2], self.const_expr(f_idx, &[3, 0, 1, 2])?, in_c)
        } else {
            // [O, kh, kw, I] -> [O, I, kh, kw]
            (fd[1], fd[2], self.const_expr(f_idx, &[0, 3, 1, 2])?, 1)
        };
        let sh = op.opt("stride_h", 1) as usize;
        let sw = op.opt("stride_w", 1) as usize;
        let padding = if op.opt("padding", PADDING_SAME) == PADDING_SAME {
            let (pt, pb) = same_pad(in_h, kh, sh);
            let (pl, pr) = same_pad(in_w, kw, sw);
            (pt, pl, pb, pr)
        } else {
            (0, 0, 0, 0)
        };
        let attrs = QnnConv2dAttrs {
            conv: Conv2dAttrs {
                strides: (sh, sw),
                padding,
                dilation: (1, 1),
                groups,
            },
            input_q: self.quant(x_idx)?,
            weight_q: self.quant(f_idx)?,
            output_q: self.quant(op.outputs[0])?,
            out_dtype: self.tensor(op.outputs[0])?.dtype,
        };
        let mut args = vec![x, filter];
        if let Some(&b_idx) = op.inputs.get(2) {
            args.push(self.const_expr(b_idx, &[])?);
        }
        let conv = call(OpKind::QnnConv2d(attrs), args);
        let out = self.fused_activation(conv, op.opt("fused_activation", ACT_NONE))?;
        self.env.insert(op.outputs[0], out);
        Ok(())
    }

    fn pool(&mut self, op: &TfliteOp, max: bool) -> Result<(), ImportError> {
        let x_idx = op.inputs[0];
        let x = self.expr(x_idx)?;
        let xt = self.tensor(x_idx)?;
        let (in_h, in_w) = match xt.shape.as_slice() {
            [_, h, w, _] => (*h, *w),
            other => return Err(ierr(format!("pool input must be NHWC, got {other:?}"))),
        };
        let kh = op.opt("filter_h", 2) as usize;
        let kw = op.opt("filter_w", 2) as usize;
        let sh = op.opt("stride_h", kh as i64) as usize;
        let sw = op.opt("stride_w", kw as i64) as usize;
        let padding = if op.opt("padding", PADDING_VALID) == PADDING_SAME {
            let (pt, pb) = same_pad(in_h, kh, sh);
            let (pl, pr) = same_pad(in_w, kw, sw);
            (pt, pl, pb, pr)
        } else {
            (0, 0, 0, 0)
        };
        let attrs = Pool2dAttrs {
            kernel: (kh, kw),
            strides: (sh, sw),
            padding,
            count_include_pad: false,
        };
        let out = if max {
            builder::max_pool2d(x, attrs)
        } else {
            builder::avg_pool2d(x, attrs)
        };
        let out = self.fused_activation(out, op.opt("fused_activation", ACT_NONE))?;
        self.env.insert(op.outputs[0], out);
        Ok(())
    }

    /// Dequantize → float op → requantize wrapper (TFLite kernels like
    /// SOFTMAX/LOGISTIC/EXP run with internal rescaling; the Relay frontend
    /// expresses them as a float island).
    fn float_island(
        &mut self,
        op: &TfliteOp,
        build: impl Fn(Expr) -> Expr,
    ) -> Result<(), ImportError> {
        let x_idx = op.inputs[0];
        let o_idx = op.outputs[0];
        let x = self.expr(x_idx)?;
        let deq = call(
            OpKind::QnnDequantize(DequantizeAttrs {
                input: self.quant(x_idx)?,
            }),
            vec![x],
        );
        let f = build(deq);
        let out_t = self.tensor(o_idx)?;
        let out = if out_t.dtype.is_quantized() {
            call(
                OpKind::QnnQuantize(QuantizeAttrs {
                    out: self.quant(o_idx)?,
                    out_dtype: out_t.dtype,
                }),
                vec![f],
            )
        } else {
            f
        };
        self.env.insert(o_idx, out);
        Ok(())
    }
}

/// Import a TFLite model into Relay. Inputs are named after their tensor
/// names; rank-4 activations become `NCHW`.
pub fn from_tflite(model: &TfliteModel) -> Result<Module, ImportError> {
    let _span = tvmnp_telemetry::span!("frontend.import", "framework" => "tflite");
    let mut imp = Importer {
        model,
        env: HashMap::new(),
    };
    let mut params: Vec<Expr> = Vec::new();
    for &i in &model.inputs {
        let t = imp.tensor(i)?;
        let v = var(t.name.clone(), TensorType::new(to_nchw(&t.shape), t.dtype));
        imp.env.insert(i, v.clone());
        params.push(v);
    }

    for op in &model.ops {
        match op.opcode.as_str() {
            "QUANTIZE" => {
                let o = op.outputs[0];
                let out_t = imp.tensor(o)?;
                let q = call(
                    OpKind::QnnQuantize(QuantizeAttrs {
                        out: imp.quant(o)?,
                        out_dtype: out_t.dtype,
                    }),
                    vec![imp.expr(op.inputs[0])?],
                );
                imp.env.insert(o, q);
            }
            "DEQUANTIZE" => {
                let q = call(
                    OpKind::QnnDequantize(DequantizeAttrs {
                        input: imp.quant(op.inputs[0])?,
                    }),
                    vec![imp.expr(op.inputs[0])?],
                );
                imp.env.insert(op.outputs[0], q);
            }
            "CONV_2D" => imp.conv2d(op, false)?,
            "DEPTHWISE_CONV_2D" => imp.conv2d(op, true)?,
            "MAX_POOL_2D" => imp.pool(op, true)?,
            "AVERAGE_POOL_2D" => imp.pool(op, false)?,
            "ADD" => {
                let attrs = QnnAddAttrs {
                    lhs_q: imp.quant(op.inputs[0])?,
                    rhs_q: imp.quant(op.inputs[1])?,
                    output_q: imp.quant(op.outputs[0])?,
                    out_dtype: imp.tensor(op.outputs[0])?.dtype,
                };
                let a = imp.expr(op.inputs[0])?;
                let b = imp.expr(op.inputs[1])?;
                let s = call(OpKind::QnnAdd(attrs), vec![a, b]);
                let out = imp.fused_activation(s, op.opt("fused_activation", ACT_NONE))?;
                imp.env.insert(op.outputs[0], out);
            }
            "CONCATENATION" => {
                // Axis arrives in NHWC terms; map to NCHW for rank-4.
                let axis_nhwc = op.opt("axis", 3) as usize;
                let rank = imp.tensor(op.inputs[0])?.shape.len();
                let axis = if rank == 4 {
                    match axis_nhwc {
                        0 => 0,
                        1 => 2,
                        2 => 3,
                        3 => 1,
                        other => return Err(ierr(format!("bad concat axis {other}"))),
                    }
                } else {
                    axis_nhwc
                };
                let input_qs = op
                    .inputs
                    .iter()
                    .map(|&i| imp.quant(i))
                    .collect::<Result<Vec<_>, _>>()?;
                let attrs = QnnConcatAttrs {
                    axis,
                    input_qs,
                    output_q: imp.quant(op.outputs[0])?,
                };
                let parts = op
                    .inputs
                    .iter()
                    .map(|&i| imp.expr(i))
                    .collect::<Result<Vec<_>, _>>()?;
                imp.env
                    .insert(op.outputs[0], call(OpKind::QnnConcatenate(attrs), parts));
            }
            "RESHAPE" => {
                let o = op.outputs[0];
                let new_shape = to_nchw(&imp.tensor(o)?.shape);
                let r = call(
                    OpKind::Reshape(ReshapeAttrs { new_shape }),
                    vec![imp.expr(op.inputs[0])?],
                );
                imp.env.insert(o, r);
            }
            "FULLY_CONNECTED" => {
                let attrs = QnnDenseAttrs {
                    input_q: imp.quant(op.inputs[0])?,
                    weight_q: imp.quant(op.inputs[1])?,
                    output_q: imp.quant(op.outputs[0])?,
                    out_dtype: imp.tensor(op.outputs[0])?.dtype,
                };
                // TFLite FC weights are already [units, in].
                let mut args = vec![imp.expr(op.inputs[0])?, imp.const_expr(op.inputs[1], &[])?];
                if let Some(&b) = op.inputs.get(2) {
                    args.push(imp.const_expr(b, &[])?);
                }
                let d = call(OpKind::QnnDense(attrs), args);
                let out = imp.fused_activation(d, op.opt("fused_activation", ACT_NONE))?;
                imp.env.insert(op.outputs[0], out);
            }
            "SOFTMAX" => imp.float_island(op, builder::softmax)?,
            "LOGISTIC" => imp.float_island(op, builder::sigmoid)?,
            "EXP" => imp.float_island(op, |e| call(OpKind::Exp, vec![e]))?,
            other => return Err(ierr(format!("unmapped TFLite opcode '{other}'"))),
        }
    }

    let body_parts = model
        .outputs
        .iter()
        .map(|&i| imp.expr(i))
        .collect::<Result<Vec<_>, _>>()?;
    let body = if body_parts.len() == 1 {
        body_parts.into_iter().next().unwrap()
    } else {
        tvmnp_relay::expr::tuple(body_parts)
    };
    let module = Module::from_main(Function::new(params, body));
    tvmnp_relay::infer_types(&module)
        .map_err(|e| ierr(format!("imported module ill-typed: {e}")))?;
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;
    use tvmnp_relay::interp::run_module;
    use tvmnp_tensor::rng::TensorRng;

    fn act(name: &str, shape: Vec<usize>, q: QuantParams) -> TfliteTensor {
        TfliteTensor {
            name: name.into(),
            shape,
            dtype: DType::U8,
            quant: Some(q),
            data: None,
        }
    }

    fn quantized_conv_model() -> TfliteModel {
        let mut rng = TensorRng::new(71);
        let qx = QuantParams::new(0.02, 128);
        let qw = QuantParams::new(0.01, 0);
        let qy = QuantParams::new(0.05, 128);
        let w = rng.uniform_quantized([4, 3, 3, 2], DType::U8, qw); // OHWI
        let b = Tensor::from_i32([4], vec![0; 4], None).unwrap();
        TfliteModel {
            tensors: vec![
                act("input", vec![1, 6, 6, 2], qx),
                TfliteTensor {
                    name: "filter".into(),
                    shape: vec![4, 3, 3, 2],
                    dtype: DType::U8,
                    quant: Some(qw),
                    data: Some(w),
                },
                TfliteTensor {
                    name: "bias".into(),
                    shape: vec![4],
                    dtype: DType::I32,
                    quant: None,
                    data: Some(b),
                },
                act("conv_out", vec![1, 6, 6, 4], qy),
            ],
            ops: vec![TfliteOp::new("CONV_2D", vec![0, 1, 2], vec![3])
                .with_opt("stride_h", 1)
                .with_opt("stride_w", 1)
                .with_opt("padding", PADDING_SAME)
                .with_opt("fused_activation", ACT_RELU6)],
            inputs: vec![0],
            outputs: vec![3],
        }
    }

    #[test]
    fn imports_quantized_conv() {
        let m = from_tflite(&quantized_conv_model()).unwrap();
        let mut rng = TensorRng::new(72);
        let qx = QuantParams::new(0.02, 128);
        let mut inputs = Map::new();
        inputs.insert(
            "input".to_string(),
            rng.uniform_quantized([1, 2, 6, 6], DType::U8, qx),
        );
        let out = run_module(&m, &inputs).unwrap();
        assert_eq!(out.shape().dims(), &[1, 4, 6, 6]);
        assert_eq!(out.dtype(), DType::U8);
    }

    #[test]
    fn same_padding_math() {
        assert_eq!(same_pad(6, 3, 1), (1, 1));
        assert_eq!(same_pad(7, 3, 2), (1, 1)); // out=4, total=(3*2+3)-7=2
        assert_eq!(same_pad(6, 2, 2), (0, 0));
        // Asymmetric case: extra pad goes after.
        assert_eq!(same_pad(5, 2, 2), (0, 1));
    }

    #[test]
    fn depthwise_kernel_layout() {
        let mut rng = TensorRng::new(73);
        let q = QuantParams::new(0.02, 128);
        let qw = QuantParams::new(0.01, 0);
        let w = rng.uniform_quantized([1, 3, 3, 2], DType::U8, qw); // 1HWC
        let model = TfliteModel {
            tensors: vec![
                act("input", vec![1, 4, 4, 2], q),
                TfliteTensor {
                    name: "filter".into(),
                    shape: vec![1, 3, 3, 2],
                    dtype: DType::U8,
                    quant: Some(qw),
                    data: Some(w),
                },
                act("out", vec![1, 4, 4, 2], q),
            ],
            ops: vec![TfliteOp::new("DEPTHWISE_CONV_2D", vec![0, 1], vec![2])
                .with_opt("padding", PADDING_SAME)],
            inputs: vec![0],
            outputs: vec![2],
        };
        let m = from_tflite(&model).unwrap();
        let mut inputs = Map::new();
        inputs.insert(
            "input".to_string(),
            rng.uniform_quantized([1, 2, 4, 4], DType::U8, q),
        );
        let out = run_module(&m, &inputs).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 4, 4]);
    }

    #[test]
    fn softmax_emits_float_island() {
        let q = QuantParams::new(1.0 / 256.0, 0);
        let model = TfliteModel {
            tensors: vec![act("input", vec![1, 10], q), act("probs", vec![1, 10], q)],
            ops: vec![TfliteOp::new("SOFTMAX", vec![0], vec![1])],
            inputs: vec![0],
            outputs: vec![1],
        };
        let m = from_tflite(&model).unwrap();
        let names: Vec<&str> = tvmnp_relay::visit::topo_order(&m.main().body)
            .iter()
            .filter_map(|e| e.op().map(|o| o.name()))
            .collect();
        assert_eq!(names, vec!["qnn.dequantize", "nn.softmax", "qnn.quantize"]);
    }

    #[test]
    fn unmapped_opcode_rejected() {
        let q = QuantParams::new(0.1, 0);
        let model = TfliteModel {
            tensors: vec![act("input", vec![1, 4], q), act("out", vec![1, 4], q)],
            ops: vec![TfliteOp::new("SVDF", vec![0], vec![1])],
            inputs: vec![0],
            outputs: vec![1],
        };
        assert!(from_tflite(&model).unwrap_err().0.contains("SVDF"));
    }

    #[test]
    fn missing_quant_rejected() {
        let mut model = quantized_conv_model();
        model.tensors[0].quant = None;
        assert!(from_tflite(&model).is_err());
    }
}
