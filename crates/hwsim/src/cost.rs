//! Work items and the analytic time model.

use crate::device::{DeviceKind, KernelClass};
use crate::soc::SocSpec;
use serde::{Deserialize, Serialize};

/// Broad kernel categories — they differ in how well devices run them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkKind {
    /// Dense MAC-bound kernels (conv, dense).
    MacHeavy,
    /// Element-wise / activation kernels.
    Elementwise,
    /// Pure data movement (reshape, transpose, concat, pad, slice).
    DataMovement,
    /// Reductions (pooling, mean, softmax normalization).
    Reduction,
}

impl WorkKind {
    /// All kinds, in a stable order (the [`CostModel`] scale-table order).
    pub const ALL: [WorkKind; 4] = [
        WorkKind::MacHeavy,
        WorkKind::Elementwise,
        WorkKind::DataMovement,
        WorkKind::Reduction,
    ];

    /// Short display name (also accepted by [`WorkKind::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            WorkKind::MacHeavy => "mac",
            WorkKind::Elementwise => "elementwise",
            WorkKind::DataMovement => "data-movement",
            WorkKind::Reduction => "reduction",
        }
    }

    /// Parse a kind from its [`WorkKind::name`].
    pub fn parse(s: &str) -> Option<WorkKind> {
        WorkKind::ALL.iter().copied().find(|k| k.name() == s)
    }

    fn index(self) -> usize {
        WorkKind::ALL.iter().position(|&k| k == self).unwrap()
    }
}

/// One kernel's worth of work, in device-neutral units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkItem {
    /// Multiply-accumulate count (each MAC = 2 ops).
    pub macs: u64,
    /// Bytes read (inputs + weights).
    pub bytes_in: u64,
    /// Bytes written.
    pub bytes_out: u64,
    /// Whether the kernel runs in 8-bit integer arithmetic.
    pub int8: bool,
    /// Kernel category.
    pub kind: WorkKind,
}

impl WorkItem {
    /// A zero-cost placeholder (identity ops).
    pub fn empty() -> Self {
        WorkItem {
            macs: 0,
            bytes_in: 0,
            bytes_out: 0,
            int8: false,
            kind: WorkKind::DataMovement,
        }
    }

    /// Total bytes touched.
    pub fn bytes(&self) -> u64 {
        self.bytes_in + self.bytes_out
    }
}

fn device_index(device: DeviceKind) -> usize {
    DeviceKind::ALL
        .iter()
        .position(|&d| d == device)
        .unwrap_or(0)
}

/// The analytic time model over a [`SocSpec`].
#[derive(Debug, Clone)]
pub struct CostModel {
    soc: SocSpec,
    /// Per-[`WorkKind`] time multipliers (indexed by `WorkKind::index`).
    /// All 1.0 by default; the bench harness injects synthetic slowdowns
    /// here to validate regression detection end to end.
    kind_scale: [f64; 4],
    /// Per-(device, kind) time multipliers (`[device][kind]`), all 1.0 by
    /// default. Thermal-throttle fault rules scale individual cells here
    /// so a fault plan can slow one device without touching the others.
    device_kind_scale: [[f64; 4]; 3],
}

impl CostModel {
    /// Model over the given SoC.
    pub fn new(soc: SocSpec) -> Self {
        CostModel {
            soc,
            kind_scale: [1.0; 4],
            device_kind_scale: [[1.0; 4]; 3],
        }
    }

    /// Borrow the SoC description.
    pub fn soc(&self) -> &SocSpec {
        &self.soc
    }

    /// Scale the body time of every kernel of `kind` by `factor` (> 1.0 =
    /// slower). Used to inject controlled slowdowns when exercising the
    /// benchmark regression harness.
    pub fn with_kind_scale(mut self, kind: WorkKind, factor: f64) -> Self {
        debug_assert!(factor > 0.0, "scale factor must be positive");
        self.kind_scale[kind.index()] *= factor;
        self
    }

    /// Current time multiplier for `kind` (1.0 unless injected).
    pub fn kind_scale(&self, kind: WorkKind) -> f64 {
        self.kind_scale[kind.index()]
    }

    /// Scale the body time of kernels of `kind` **on `device` only** by
    /// `factor` (> 1.0 = slower). Thermal-throttle fault rules apply here
    /// (see `fault::FaultPlan::throttled_cost`).
    pub fn with_device_kind_scale(
        mut self,
        device: DeviceKind,
        kind: WorkKind,
        factor: f64,
    ) -> Self {
        debug_assert!(factor > 0.0, "scale factor must be positive");
        self.device_kind_scale[device_index(device)][kind.index()] *= factor;
        self
    }

    /// Current (device, kind) multiplier (1.0 unless a throttle applied).
    pub fn device_kind_scale(&self, device: DeviceKind, kind: WorkKind) -> f64 {
        self.device_kind_scale[device_index(device)][kind.index()]
    }

    /// The same SoC with every injected multiplier removed: the pure
    /// analytic prediction. The profile layer compares measured spans
    /// against this reference, so an injected slowdown (or a throttle)
    /// shows up as a residual instead of silently moving the baseline.
    pub fn unscaled(&self) -> CostModel {
        CostModel::new(self.soc.clone())
    }

    /// Apply a batch of measured per-(device, kind) multipliers — the
    /// constructor `tvmnp-profile::CalibratedCostModel` feeds its fitted
    /// scale factors through to turn a measured profile back into a
    /// usable cost model.
    pub fn with_device_kind_scales(
        mut self,
        scales: impl IntoIterator<Item = (DeviceKind, WorkKind, f64)>,
    ) -> Self {
        for (device, kind, factor) in scales {
            self = self.with_device_kind_scale(device, kind, factor);
        }
        self
    }

    /// Time for one kernel on one device, **excluding** launch overhead:
    /// roofline-style `max(compute, memory)`.
    pub fn kernel_body_us(&self, w: &WorkItem, device: DeviceKind, class: KernelClass) -> f64 {
        let spec = self.soc.device(device);
        let gops = spec.effective_gops(w.int8, class).max(1e-9);
        // MacHeavy kernels use the full MAC array; other kinds are
        // throughput-limited well below peak (vector lanes, not MACs).
        let kind_derate = match w.kind {
            WorkKind::MacHeavy => 1.0,
            WorkKind::Elementwise => 0.25,
            WorkKind::Reduction => 0.15,
            WorkKind::DataMovement => 1.0, // memory bound anyway
        };
        let ops = 2.0 * w.macs as f64;
        let compute_us = ops / (gops * kind_derate * 1e3);
        let memory_us = w.bytes() as f64 / (spec.mem_bw_gbps * 1e3);
        compute_us.max(memory_us)
            * self.kind_scale[w.kind.index()]
            * self.device_kind_scale[device_index(device)][w.kind.index()]
    }

    /// Time for one kernel including the per-kernel launch overhead.
    pub fn kernel_us(&self, w: &WorkItem, device: DeviceKind, class: KernelClass) -> f64 {
        self.soc.device(device).kernel_launch_us + self.kernel_body_us(w, device, class)
    }

    /// Fixed cost of dispatching one compiled subgraph to `device`.
    pub fn subgraph_dispatch_us(&self, device: DeviceKind) -> f64 {
        self.soc.device(device).subgraph_dispatch_us
    }

    /// Cost of moving `bytes` across a runtime/device boundary.
    pub fn transfer_us(&self, bytes: usize) -> f64 {
        self.soc.transfer.time_us(bytes)
    }

    /// Energy of one kernel on one device, microjoules (compute + its own
    /// memory traffic).
    pub fn kernel_energy_uj(&self, w: &WorkItem, device: DeviceKind, class: KernelClass) -> f64 {
        let spec = self.soc.device(device);
        let ops = 2.0 * w.macs as f64 + w.bytes() as f64 * 0.1; // traffic-side ops
        spec.energy_uj(ops, w.int8, class)
            + crate::soc::TRANSFER_PJ_PER_BYTE * w.bytes() as f64 * 1e-6
    }

    /// Energy of one boundary transfer, microjoules.
    pub fn transfer_energy_uj(&self, bytes: usize) -> f64 {
        self.soc.transfer.energy_uj(bytes)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new(SocSpec::dimensity_800())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_item(macs: u64, int8: bool) -> WorkItem {
        WorkItem {
            macs,
            bytes_in: 1 << 20,
            bytes_out: 1 << 18,
            int8,
            kind: WorkKind::MacHeavy,
        }
    }

    #[test]
    fn tvm_slower_than_vendor_on_cpu() {
        let m = CostModel::default();
        let w = conv_item(50_000_000, false);
        let tvm = m.kernel_us(&w, DeviceKind::Cpu, KernelClass::TvmUntuned);
        let np = m.kernel_us(&w, DeviceKind::Cpu, KernelClass::VendorTuned);
        assert!(
            tvm > 2.0 * np,
            "tvm {tvm} should be much slower than vendor {np}"
        );
    }

    #[test]
    fn apu_fastest_for_int8_conv() {
        let m = CostModel::default();
        let w = conv_item(50_000_000, true);
        let apu = m.kernel_body_us(&w, DeviceKind::Apu, KernelClass::VendorTuned);
        let cpu = m.kernel_body_us(&w, DeviceKind::Cpu, KernelClass::VendorTuned);
        let gpu = m.kernel_body_us(&w, DeviceKind::Gpu, KernelClass::VendorTuned);
        assert!(apu < cpu && apu < gpu);
    }

    #[test]
    fn memory_bound_kernels_hit_bandwidth_roof() {
        let m = CostModel::default();
        // Almost no MACs, lots of bytes: the roofline must pick memory time.
        let w = WorkItem {
            macs: 10,
            bytes_in: 140_000_000,
            bytes_out: 0,
            int8: false,
            kind: WorkKind::DataMovement,
        };
        let t = m.kernel_body_us(&w, DeviceKind::Cpu, KernelClass::VendorTuned);
        // 140 MB at 14 GB/s = 10 ms.
        assert!((t - 10_000.0).abs() / 10_000.0 < 0.01);
    }

    #[test]
    fn dispatch_overhead_positive_everywhere() {
        let m = CostModel::default();
        for d in DeviceKind::ALL {
            assert!(m.subgraph_dispatch_us(d) > 0.0);
        }
    }

    #[test]
    fn apu_saves_energy_on_int8_conv() {
        let m = CostModel::default();
        let w = conv_item(50_000_000, true);
        let apu = m.kernel_energy_uj(&w, DeviceKind::Apu, KernelClass::VendorTuned);
        let cpu = m.kernel_energy_uj(&w, DeviceKind::Cpu, KernelClass::VendorTuned);
        assert!(apu < cpu / 3.0, "apu {apu} uJ vs cpu {cpu} uJ");
    }

    #[test]
    fn kind_scale_slows_only_that_kind() {
        let base = CostModel::default();
        let scaled = CostModel::default().with_kind_scale(WorkKind::MacHeavy, 2.0);
        let conv = conv_item(50_000_000, false);
        let t0 = base.kernel_body_us(&conv, DeviceKind::Cpu, KernelClass::VendorTuned);
        let t1 = scaled.kernel_body_us(&conv, DeviceKind::Cpu, KernelClass::VendorTuned);
        assert!((t1 - 2.0 * t0).abs() < 1e-9, "{t1} != 2*{t0}");
        let ew = WorkItem {
            macs: 1_000_000,
            bytes_in: 1 << 10,
            bytes_out: 1 << 10,
            int8: false,
            kind: WorkKind::Elementwise,
        };
        let e0 = base.kernel_body_us(&ew, DeviceKind::Cpu, KernelClass::VendorTuned);
        let e1 = scaled.kernel_body_us(&ew, DeviceKind::Cpu, KernelClass::VendorTuned);
        assert_eq!(e0, e1, "other kinds untouched");
        assert_eq!(scaled.kind_scale(WorkKind::MacHeavy), 2.0);
        assert_eq!(WorkKind::parse("mac"), Some(WorkKind::MacHeavy));
        assert_eq!(WorkKind::parse("bogus"), None);
    }

    #[test]
    fn unscaled_strips_every_injected_multiplier() {
        let scaled = CostModel::default()
            .with_kind_scale(WorkKind::MacHeavy, 2.0)
            .with_device_kind_scale(DeviceKind::Apu, WorkKind::MacHeavy, 1.5);
        let clean = scaled.unscaled();
        let w = conv_item(50_000_000, true);
        let reference =
            CostModel::default().kernel_body_us(&w, DeviceKind::Apu, KernelClass::VendorTuned);
        let stripped = clean.kernel_body_us(&w, DeviceKind::Apu, KernelClass::VendorTuned);
        assert!((stripped - reference).abs() < 1e-12);
        assert_eq!(clean.soc(), scaled.soc());
        // The batch constructor composes like repeated single applications.
        let batch = clean.with_device_kind_scales([
            (DeviceKind::Apu, WorkKind::MacHeavy, 1.5),
            (DeviceKind::Apu, WorkKind::MacHeavy, 2.0),
        ]);
        assert_eq!(
            batch.device_kind_scale(DeviceKind::Apu, WorkKind::MacHeavy),
            3.0
        );
    }

    #[test]
    fn empty_item_costs_only_overhead() {
        let m = CostModel::default();
        let t = m.kernel_us(
            &WorkItem::empty(),
            DeviceKind::Cpu,
            KernelClass::VendorTuned,
        );
        assert!((t - m.soc().device(DeviceKind::Cpu).kernel_launch_us).abs() < 1e-9);
    }
}
