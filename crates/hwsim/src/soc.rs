//! The simulated SoC: device inventory and inter-device transfer model.

use crate::device::{DeviceKind, DeviceSpec};
use serde::{Deserialize, Serialize};

/// DRAM traffic energy, picojoules per byte moved across a boundary.
pub const TRANSFER_PJ_PER_BYTE: f64 = 20.0;

/// Cost model for moving tensors between device-visible memories.
///
/// On the Dimensity 800 every device shares LPDDR4X DRAM, but crossing a
/// runtime boundary (TVM graph executor ↔ Neuron runtime, or CPU ↔ APU
/// driver queue) costs a fixed synchronization latency plus a copy at
/// bounded bandwidth. This is the I/O cost §5.1 says operation-level
/// scheduling must take into account.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    /// Fixed per-transfer latency, microseconds.
    pub latency_us: f64,
    /// Copy bandwidth, GB/s.
    pub bandwidth_gbps: f64,
}

impl TransferModel {
    /// Time to move `bytes` across the boundary, in microseconds.
    pub fn time_us(&self, bytes: usize) -> f64 {
        self.latency_us + bytes as f64 / (self.bandwidth_gbps * 1e3)
    }

    /// Energy to move `bytes` across the boundary, in microjoules.
    pub fn energy_uj(&self, bytes: usize) -> f64 {
        bytes as f64 * TRANSFER_PJ_PER_BYTE * 1e-6
    }
}

/// Full SoC description (paper Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocSpec {
    /// Operating system string.
    pub os: String,
    /// Chipset name.
    pub chipset: String,
    /// CPU configuration string.
    pub cpu_desc: String,
    /// GPU configuration string.
    pub gpu_desc: String,
    /// APU configuration string.
    pub apu_desc: String,
    /// Per-device performance specs.
    pub devices: Vec<DeviceSpec>,
    /// Cost of crossing a device/runtime boundary.
    pub transfer: TransferModel,
}

impl SocSpec {
    /// The Dimensity 800 / OPPO Reno4 Z 5G testbed of the paper.
    ///
    /// Throughput figures are public-order-of-magnitude values for the
    /// parts (A76/A55 cluster NEON FLOPs, Mali-G57 MC4 FP32, APU 3.0's
    /// marketed ~2.4 TOPS int8); efficiency deratings encode the untuned-
    /// TVM vs vendor-library gap the paper observes. Fixed overheads
    /// (kernel launch, driver dispatch, transfer latency) are scaled down
    /// by roughly the same factor as the reproduction's models are scaled
    /// from their full-size originals, so that the compute/overhead
    /// balance — and therefore every ordering the figures test — matches
    /// the paper's regime. Absolute values are not calibrated to the
    /// authors' device; only orderings and ratios are meaningful
    /// (DESIGN.md, EXPERIMENTS.md).
    pub fn dimensity_800() -> Self {
        SocSpec {
            os: "Android 11".into(),
            chipset: "MediaTek MT6873V Dimensity 800".into(),
            cpu_desc: "4x2.0 GHz Cortex-A76 & 4x2.0 GHz Cortex-A55".into(),
            gpu_desc: "Mali-G57 MC4".into(),
            apu_desc: "MediaTek APU 3.0".into(),
            devices: vec![
                DeviceSpec {
                    kind: DeviceKind::Cpu,
                    model_name: "4xA76+4xA55 @ 2.0 GHz".into(),
                    f32_gflops: 64.0,
                    int8_gops: 128.0,
                    mem_bw_gbps: 14.0,
                    kernel_launch_us: 2.0,
                    subgraph_dispatch_us: 4.0,
                    tvm_efficiency: 0.10,
                    vendor_efficiency: 0.55,
                    pj_per_op_f32: 180.0,
                    pj_per_op_int8: 60.0,
                },
                DeviceSpec {
                    kind: DeviceKind::Gpu,
                    model_name: "Mali-G57 MC4".into(),
                    f32_gflops: 125.0,
                    int8_gops: 250.0,
                    mem_bw_gbps: 14.0,
                    kernel_launch_us: 8.0,
                    subgraph_dispatch_us: 20.0,
                    tvm_efficiency: 0.05,
                    vendor_efficiency: 0.45,
                    pj_per_op_f32: 90.0,
                    pj_per_op_int8: 35.0,
                },
                DeviceSpec {
                    kind: DeviceKind::Apu,
                    model_name: "APU 3.0".into(),
                    f32_gflops: 450.0,
                    int8_gops: 2400.0,
                    mem_bw_gbps: 14.0,
                    kernel_launch_us: 1.0,
                    subgraph_dispatch_us: 30.0,
                    tvm_efficiency: 0.0, // TVM cannot generate APU code.
                    vendor_efficiency: 0.60,
                    pj_per_op_f32: 25.0,
                    pj_per_op_int8: 4.0,
                },
            ],
            transfer: TransferModel {
                latency_us: 15.0,
                bandwidth_gbps: 10.0,
            },
        }
    }

    /// Spec for one device.
    pub fn device(&self, kind: DeviceKind) -> &DeviceSpec {
        self.devices
            .iter()
            .find(|d| d.kind == kind)
            .expect("SocSpec is missing a device entry")
    }

    /// Rows of paper Table 2 as (label, value) pairs.
    pub fn table2_rows(&self) -> Vec<(&'static str, String)> {
        vec![
            ("OS", self.os.clone()),
            ("Chipset", self.chipset.clone()),
            ("CPU", self.cpu_desc.clone()),
            ("GPU", self.gpu_desc.clone()),
            ("APU", self.apu_desc.clone()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::KernelClass;

    #[test]
    fn testbed_has_all_devices() {
        let soc = SocSpec::dimensity_800();
        for k in DeviceKind::ALL {
            assert_eq!(soc.device(k).kind, k);
        }
    }

    #[test]
    fn apu_dominates_int8_compute() {
        let soc = SocSpec::dimensity_800();
        let apu = soc
            .device(DeviceKind::Apu)
            .effective_gops(true, KernelClass::VendorTuned);
        let cpu = soc
            .device(DeviceKind::Cpu)
            .effective_gops(true, KernelClass::VendorTuned);
        assert!(
            apu > 10.0 * cpu,
            "APU must be an order of magnitude faster on int8"
        );
    }

    #[test]
    fn tvm_cpu_slower_than_vendor_cpu() {
        let soc = SocSpec::dimensity_800();
        let d = soc.device(DeviceKind::Cpu);
        assert!(
            d.effective_gops(false, KernelClass::VendorTuned)
                > 3.0 * d.effective_gops(false, KernelClass::TvmUntuned)
        );
    }

    #[test]
    fn transfer_monotone_in_bytes() {
        let t = TransferModel {
            latency_us: 100.0,
            bandwidth_gbps: 10.0,
        };
        assert!(t.time_us(1_000_000) > t.time_us(1_000));
        // 1 MB at 10 GB/s = 100 us + 100 us latency.
        assert!((t.time_us(1_000_000) - 200.0).abs() < 1e-6);
    }

    #[test]
    fn apu_most_energy_efficient() {
        let soc = SocSpec::dimensity_800();
        let e = |k: DeviceKind, int8: bool| {
            soc.device(k).energy_uj(1e9, int8, KernelClass::VendorTuned)
        };
        assert!(e(DeviceKind::Apu, false) < e(DeviceKind::Gpu, false));
        assert!(e(DeviceKind::Gpu, false) < e(DeviceKind::Cpu, false));
        assert!(e(DeviceKind::Apu, true) < e(DeviceKind::Apu, false));
    }

    #[test]
    fn table2_matches_paper() {
        let soc = SocSpec::dimensity_800();
        let rows = soc.table2_rows();
        assert_eq!(rows[0].1, "Android 11");
        assert!(rows[1].1.contains("Dimensity 800"));
        assert!(rows[4].1.contains("APU 3.0"));
    }
}
