//! Device kinds and performance specifications.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An execution unit of the SoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// The CPU cluster (4×Cortex-A76 + 4×Cortex-A55 on the Dimensity 800).
    Cpu,
    /// The Mali-G57 MC4 GPU.
    Gpu,
    /// The MediaTek APU 3.0 AI accelerator.
    Apu,
}

impl DeviceKind {
    /// All devices, in a stable order.
    pub const ALL: [DeviceKind; 3] = [DeviceKind::Cpu, DeviceKind::Gpu, DeviceKind::Apu];

    /// Short display name (also accepted by [`DeviceKind::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Cpu => "cpu",
            DeviceKind::Gpu => "gpu",
            DeviceKind::Apu => "apu",
        }
    }

    /// Parse a device from its [`DeviceKind::name`].
    pub fn parse(s: &str) -> Option<DeviceKind> {
        DeviceKind::ALL.iter().copied().find(|d| d.name() == s)
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Who generated the kernel being executed.
///
/// The paper's central empirical claim — TVM-only is slower than anything
/// using NeuroPilot back-ends (Figs. 4 and 6) — is a *codegen* property:
/// TVM's untuned portable kernels vs the vendor's hand-tuned libraries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelClass {
    /// TVM's own codegen without autotuning (the paper runs `opt_level`
    /// compiles, not tuned schedules).
    TvmUntuned,
    /// NeuroPilot's vendor-tuned kernels / compiled Neuron networks.
    VendorTuned,
}

/// Performance specification of one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Which device this describes.
    pub kind: DeviceKind,
    /// Marketing/board name (for Table 2).
    pub model_name: String,
    /// Peak float32 throughput, GFLOP/s (multiply+add counted separately).
    pub f32_gflops: f64,
    /// Peak int8 throughput, GOP/s.
    pub int8_gops: f64,
    /// Sustained memory bandwidth, GB/s.
    pub mem_bw_gbps: f64,
    /// Fixed cost to launch one kernel, microseconds.
    pub kernel_launch_us: f64,
    /// Fixed cost to dispatch one compiled subgraph to the device
    /// (driver/runtime entry), microseconds.
    pub subgraph_dispatch_us: f64,
    /// Fraction of peak reached by TVM's untuned kernels (only meaningful
    /// for devices TVM can target, i.e. the CPU).
    pub tvm_efficiency: f64,
    /// Fraction of peak reached by vendor-tuned kernels.
    pub vendor_efficiency: f64,
    /// Energy per useful float op at full efficiency, picojoules.
    pub pj_per_op_f32: f64,
    /// Energy per useful int8 op at full efficiency, picojoules.
    pub pj_per_op_int8: f64,
}

impl DeviceSpec {
    /// Effective compute throughput in GOP/s for the dtype width and
    /// kernel class, after the efficiency derating.
    pub fn effective_gops(&self, int8: bool, class: KernelClass) -> f64 {
        let peak = if int8 {
            self.int8_gops
        } else {
            self.f32_gflops
        };
        let eff = match class {
            KernelClass::TvmUntuned => self.tvm_efficiency,
            KernelClass::VendorTuned => self.vendor_efficiency,
        };
        peak * eff
    }

    /// Whether TVM's own codegen can target this device at all. In the
    /// paper's setting TVM targets the mobile CPU; the APU is reachable
    /// only through NeuroPilot (that is the entire point of the BYOC flow).
    pub fn tvm_can_target(&self) -> bool {
        matches!(self.kind, DeviceKind::Cpu)
    }

    /// Energy for `ops` operations under a kernel class, microjoules.
    ///
    /// Inefficient code spends the same silicon energy over more cycles
    /// per useful op, so energy scales inversely with the efficiency
    /// derating — the physics behind NeuroPilot's power pitch (paper §2.1).
    pub fn energy_uj(&self, ops: f64, int8: bool, class: KernelClass) -> f64 {
        let pj = if int8 {
            self.pj_per_op_int8
        } else {
            self.pj_per_op_f32
        };
        let eff = match class {
            KernelClass::TvmUntuned => self.tvm_efficiency,
            KernelClass::VendorTuned => self.vendor_efficiency,
        }
        .max(1e-9);
        ops * pj / eff * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec {
            kind: DeviceKind::Cpu,
            model_name: "test".into(),
            f32_gflops: 10.0,
            int8_gops: 40.0,
            mem_bw_gbps: 8.0,
            kernel_launch_us: 5.0,
            subgraph_dispatch_us: 50.0,
            tvm_efficiency: 0.1,
            vendor_efficiency: 0.5,
            pj_per_op_f32: 100.0,
            pj_per_op_int8: 25.0,
        }
    }

    #[test]
    fn effective_throughput() {
        let s = spec();
        assert!((s.effective_gops(false, KernelClass::TvmUntuned) - 1.0).abs() < 1e-9);
        assert!((s.effective_gops(false, KernelClass::VendorTuned) - 5.0).abs() < 1e-9);
        assert!((s.effective_gops(true, KernelClass::VendorTuned) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn vendor_beats_tvm_by_construction() {
        let s = spec();
        assert!(
            s.effective_gops(false, KernelClass::VendorTuned)
                > s.effective_gops(false, KernelClass::TvmUntuned)
        );
    }

    #[test]
    fn only_cpu_is_tvm_targetable() {
        assert!(spec().tvm_can_target());
        let apu = DeviceSpec {
            kind: DeviceKind::Apu,
            ..spec()
        };
        assert!(!apu.tvm_can_target());
    }

    #[test]
    fn energy_scales_with_inefficiency() {
        let s = spec();
        let tuned = s.energy_uj(1e9, false, KernelClass::VendorTuned);
        let untuned = s.energy_uj(1e9, false, KernelClass::TvmUntuned);
        assert!(untuned > 4.0 * tuned, "0.1 vs 0.5 efficiency = 5x energy");
        let int8 = s.energy_uj(1e9, true, KernelClass::VendorTuned);
        assert!(int8 < tuned, "int8 ops cost less energy");
    }

    #[test]
    fn names() {
        assert_eq!(DeviceKind::Apu.to_string(), "apu");
        assert_eq!(DeviceKind::ALL.len(), 3);
        for d in DeviceKind::ALL {
            assert_eq!(DeviceKind::parse(d.name()), Some(d));
        }
        assert_eq!(DeviceKind::parse("npu"), None);
    }
}
