//! # tvmnp-hwsim
//!
//! Analytic performance simulator for a MediaTek Dimensity-800-class
//! mobile SoC (the paper's testbed, Table 2: OPPO Reno4 Z 5G — 4×A76 +
//! 4×A55 CPU, Mali-G57 MC4 GPU, MediaTek APU 3.0).
//!
//! ## Why a simulator
//!
//! The paper measures wall-clock inference time on proprietary silicon we
//! cannot run. What its figures actually demonstrate is *relative* cost:
//! which target permutation wins per model, by roughly what factor, and
//! where coverage gaps leave bars missing. Those relations are functions
//! of (a) per-device arithmetic/memory throughput, (b) per-kernel and
//! per-subgraph dispatch overheads, and (c) inter-device transfer costs —
//! all of which an analytic model captures deterministically.
//!
//! The *numeric results* of every graph are still computed for real on the
//! host (see `tvmnp-tensor`); this crate only charges simulated time.
//!
//! Modules:
//! * [`device`] — device kinds, throughput/overhead specs, kernel classes;
//! * [`soc`] — the Dimensity 800 SoC descriptor (Table 2) and transfer model;
//! * [`cost`] — work items and the time model;
//! * [`timeline`] — simulated clock, resource reservations, Gantt segments
//!   (consumed by the pipeline scheduler, paper Fig. 5);
//! * [`fault`] — deterministic fault injection (seeded [`FaultPlan`]s,
//!   retry/backoff policy, per-device circuit breaker) so the resilience
//!   layers above can be exercised reproducibly.

pub mod cost;
pub mod device;
pub mod fault;
pub mod soc;
pub mod timeline;

pub use cost::{CostModel, WorkItem, WorkKind};
pub use device::{DeviceKind, DeviceSpec, KernelClass};
pub use fault::{
    CircuitBreaker, Fault, FaultInjector, FaultKind, FaultPlan, FaultRule, FaultSite,
    FaultSpecError, RetryPolicy,
};
pub use soc::{SocSpec, TransferModel};
pub use timeline::{Segment, SimClock, Timeline};
