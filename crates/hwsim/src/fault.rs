//! Deterministic fault injection for the simulated SoC.
//!
//! Production mobile runtimes treat accelerator failure as a normal event:
//! the APU driver rejects a compile, a dispatch times out, thermal
//! pressure throttles a device. This module lets the simulator reproduce
//! those events **deterministically** — a [`FaultPlan`] carries an
//! explicit seed and a list of rules, and every decision is drawn from a
//! splitmix64 stream keyed on `(seed, device, invocation)`. No wall-clock
//! randomness: the same plan injected twice produces byte-identical runs.
//!
//! The plan is data ([`serde`] round-trips it), built either fluently
//! ([`FaultPlan::seeded`] + `transient_dispatch`/`device_lost`/…) or from
//! the CLI spec grammar of [`FaultPlan::with_spec`]
//! (`<device>:<site>:<kind>[=<value>]`, e.g. `apu:dispatch:transient`).
//!
//! A [`FaultInjector`] interprets the plan at runtime: execution engines
//! consult it at each subgraph dispatch / compile and receive `Some(Fault)`
//! when the seeded stream says this attempt fails. [`RetryPolicy`] and
//! [`CircuitBreaker`] are the policy half: exponential backoff charged in
//! *simulated* microseconds, and a per-device trip counter that tells the
//! fallback layer when to stop trusting a device.
#![deny(clippy::unwrap_used)]

use crate::cost::{CostModel, WorkKind};
use crate::device::DeviceKind;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Where in the execution stack a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultSite {
    /// Compiling / planning a network for the device.
    Compile,
    /// Dispatching a compiled subgraph to the device driver.
    Dispatch,
    /// Kernel execution (thermal throttling).
    Kernel,
}

impl FaultSite {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Compile => "compile",
            FaultSite::Dispatch => "dispatch",
            FaultSite::Kernel => "kernel",
        }
    }
}

/// What kind of fault a rule injects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Transient dispatch failure: each invocation fails a seeded number
    /// of leading attempts (`0..=max_failures`), then succeeds — a retry
    /// recovers it. The first invocation on a device always fails at
    /// least once, so a faulted run provably exercises the retry path.
    Transient {
        /// Most leading attempts of one invocation that can fail.
        max_failures: u32,
    },
    /// The device driver is gone: every dispatch fails, retrying is
    /// pointless (`Fault::fatal`).
    DeviceLost,
    /// The driver rejects compiling for the device (fatal at the compile
    /// site).
    CompileReject,
    /// Thermal throttle: kernels of the matched work kind run
    /// `factor`× slower on the device. Not an error — a slowdown charged
    /// through the cost model (see [`FaultPlan::throttled_cost`]).
    ThermalThrottle {
        /// Slowdown multiplier (> 1.0 = slower).
        factor: f64,
    },
}

impl FaultKind {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Transient { .. } => "transient",
            FaultKind::DeviceLost => "device-lost",
            FaultKind::CompileReject => "compile-reject",
            FaultKind::ThermalThrottle { .. } => "thermal-throttle",
        }
    }

    /// The site this kind strikes at.
    pub fn site(self) -> FaultSite {
        match self {
            FaultKind::Transient { .. } | FaultKind::DeviceLost => FaultSite::Dispatch,
            FaultKind::CompileReject => FaultSite::Compile,
            FaultKind::ThermalThrottle { .. } => FaultSite::Kernel,
        }
    }
}

/// One injection rule: a kind of fault striking one device (optionally
/// restricted to one work kind, for thermal throttles).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRule {
    /// Device the rule applies to.
    pub device: DeviceKind,
    /// What to inject.
    pub kind: FaultKind,
    /// For [`FaultKind::ThermalThrottle`]: restrict to one work kind
    /// (`None` = all kinds). Ignored by the other fault kinds.
    pub work: Option<WorkKind>,
}

/// Error from parsing a `--inject-fault` spec string.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpecError(pub String);

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

/// A seeded, serializable set of fault-injection rules.
///
/// The seed drives every probabilistic decision, so a plan is a complete,
/// reproducible description of a fault scenario — it can be logged,
/// checked into a repro case, or loaded from CLI/JSON.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Injection rules, consulted in order (first match wins per site).
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan with the given seed (fluent-builder entry point).
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Add an arbitrary rule.
    pub fn with_rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// Add a transient-dispatch-failure rule for `device`.
    pub fn transient_dispatch(self, device: DeviceKind, max_failures: u32) -> FaultPlan {
        self.with_rule(FaultRule {
            device,
            kind: FaultKind::Transient {
                max_failures: max_failures.max(1),
            },
            work: None,
        })
    }

    /// Add a device-lost rule for `device`.
    pub fn device_lost(self, device: DeviceKind) -> FaultPlan {
        self.with_rule(FaultRule {
            device,
            kind: FaultKind::DeviceLost,
            work: None,
        })
    }

    /// Add a compile-rejection rule for `device`.
    pub fn compile_reject(self, device: DeviceKind) -> FaultPlan {
        self.with_rule(FaultRule {
            device,
            kind: FaultKind::CompileReject,
            work: None,
        })
    }

    /// Add a thermal-throttle rule for `device` (`work = None` throttles
    /// every kind).
    pub fn thermal_throttle(
        self,
        device: DeviceKind,
        work: Option<WorkKind>,
        factor: f64,
    ) -> FaultPlan {
        self.with_rule(FaultRule {
            device,
            kind: FaultKind::ThermalThrottle { factor },
            work,
        })
    }

    /// Add one rule from a CLI spec string, mirroring the
    /// `--inject-slowdown` grammar:
    ///
    /// ```text
    /// <device>:<site>:<kind>[=<value>][@<work>]
    ///
    /// apu:dispatch:transient        first attempts fail, retry recovers
    /// apu:dispatch:transient=3      up to 3 leading failures per dispatch
    /// apu:dispatch:device-lost      every dispatch fails
    /// apu:compile:reject            driver rejects the compile
    /// apu:kernel:throttle=2.5       kernels 2.5x slower
    /// apu:kernel:throttle=2.5@mac   only MAC-heavy kernels
    /// ```
    pub fn with_spec(mut self, spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut parts = spec.splitn(3, ':');
        let (Some(dev), Some(site), Some(kind)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(FaultSpecError(format!(
                "'{spec}' (expected <device>:<site>:<kind>[=<value>][@<work>])"
            )));
        };
        let device = DeviceKind::parse(dev)
            .ok_or_else(|| FaultSpecError(format!("unknown device '{dev}' in '{spec}'")))?;
        // Split the optional @<work> suffix, then the optional =<value>.
        let (kind, work) = match kind.split_once('@') {
            Some((k, w)) => {
                let work = WorkKind::parse(w).ok_or_else(|| {
                    FaultSpecError(format!("unknown work kind '{w}' in '{spec}'"))
                })?;
                (k, Some(work))
            }
            None => (kind, None),
        };
        let (kind, value) = match kind.split_once('=') {
            Some((k, v)) => {
                let value: f64 = v
                    .parse()
                    .map_err(|_| FaultSpecError(format!("bad numeric value '{v}' in '{spec}'")))?;
                (k, Some(value))
            }
            None => (kind, None),
        };
        let rule = match (site, kind) {
            ("dispatch", "transient") => FaultRule {
                device,
                kind: FaultKind::Transient {
                    max_failures: value.unwrap_or(2.0).max(1.0) as u32,
                },
                work,
            },
            ("dispatch", "device-lost") | ("dispatch", "lost") => FaultRule {
                device,
                kind: FaultKind::DeviceLost,
                work,
            },
            ("compile", "reject") => FaultRule {
                device,
                kind: FaultKind::CompileReject,
                work,
            },
            ("kernel", "throttle") => FaultRule {
                device,
                kind: FaultKind::ThermalThrottle {
                    factor: value.unwrap_or(2.0),
                },
                work,
            },
            _ => {
                return Err(FaultSpecError(format!(
                    "unknown site:kind '{site}:{kind}' in '{spec}' (expected \
                     dispatch:transient, dispatch:device-lost, compile:reject, \
                     or kernel:throttle)"
                )))
            }
        };
        self.rules.push(rule);
        Ok(self)
    }

    /// Apply every thermal-throttle rule onto a cost model, scaling the
    /// matched `(device, work kind)` cells. Non-throttle rules are
    /// ignored; with no throttle rules the model is returned unchanged
    /// (bit-identical timings).
    pub fn throttled_cost(&self, mut cost: CostModel) -> CostModel {
        for rule in &self.rules {
            if let FaultKind::ThermalThrottle { factor } = rule.kind {
                match rule.work {
                    Some(kind) => cost = cost.with_device_kind_scale(rule.device, kind, factor),
                    None => {
                        for kind in WorkKind::ALL {
                            cost = cost.with_device_kind_scale(rule.device, kind, factor);
                        }
                    }
                }
            }
        }
        cost
    }
}

/// One injected fault, as seen by an execution engine.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// Device the fault struck.
    pub device: DeviceKind,
    /// Site it struck at.
    pub site: FaultSite,
    /// Whether retrying the same device is pointless (device-lost,
    /// compile-reject) as opposed to transient.
    pub fatal: bool,
    /// Human-readable cause, e.g. `transient dispatch failure on apu
    /// (invocation 3, attempt 1)`.
    pub description: String,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn device_index(device: DeviceKind) -> usize {
    DeviceKind::ALL
        .iter()
        .position(|&d| d == device)
        .unwrap_or(0)
}

#[derive(Default)]
struct DispatchState {
    /// Dispatch invocations seen so far (per device).
    invocations: u64,
    /// Leading failures still owed by the current invocation.
    remaining_failures: u32,
}

#[derive(Default)]
struct InjectorState {
    dispatch: [DispatchState; 3],
    faults: [u64; 3],
}

/// Runtime interpreter of a [`FaultPlan`].
///
/// Thread-safe; the deterministic stream advances per consulted dispatch
/// invocation, so a fixed sequence of engine calls yields a fixed
/// sequence of faults.
pub struct FaultInjector {
    plan: FaultPlan,
    state: Mutex<InjectorState>,
}

impl FaultInjector {
    /// Interpreter over `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            state: Mutex::new(InjectorState::default()),
        }
    }

    /// An injector that never faults (empty plan).
    pub fn inactive() -> FaultInjector {
        FaultInjector::new(FaultPlan::default())
    }

    /// The plan being interpreted.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether any rule can fire.
    pub fn is_active(&self) -> bool {
        !self.plan.is_empty()
    }

    fn dispatch_rule(&self, device: DeviceKind) -> Option<&FaultRule> {
        self.plan
            .rules
            .iter()
            .find(|r| r.device == device && r.kind.site() == FaultSite::Dispatch)
    }

    /// Consult at dispatch attempt `attempt` (1-based) of one subgraph
    /// invocation on `device`. Engines must call with `attempt = 1` first
    /// and increment on each retry of the *same* invocation — the seeded
    /// per-invocation failure count is drawn at attempt 1.
    pub fn on_dispatch(&self, device: DeviceKind, attempt: u32) -> Option<Fault> {
        let rule = *self.dispatch_rule(device)?;
        let di = device_index(device);
        let mut st = self.state.lock();
        match rule.kind {
            FaultKind::DeviceLost => {
                st.faults[di] += 1;
                Some(Fault {
                    device,
                    site: FaultSite::Dispatch,
                    fatal: true,
                    description: format!("device lost: {device} driver gone (attempt {attempt})"),
                })
            }
            FaultKind::Transient { max_failures } => {
                let inv = if attempt == 1 {
                    let inv = st.dispatch[di].invocations;
                    st.dispatch[di].invocations += 1;
                    let draw = splitmix64(
                        self.plan
                            .seed
                            .wrapping_add(0x517c_c1b7_2722_0a95u64.wrapping_mul(di as u64 + 1))
                            .wrapping_add(inv),
                    );
                    let mut failures = (draw % (max_failures as u64 + 1)) as u32;
                    // The very first invocation on a faulted device always
                    // fails once: a seeded plan provably exercises retry.
                    if inv == 0 {
                        failures = failures.max(1);
                    }
                    st.dispatch[di].remaining_failures = failures;
                    inv
                } else {
                    st.dispatch[di].invocations.saturating_sub(1)
                };
                if st.dispatch[di].remaining_failures == 0 {
                    return None;
                }
                st.dispatch[di].remaining_failures -= 1;
                st.faults[di] += 1;
                Some(Fault {
                    device,
                    site: FaultSite::Dispatch,
                    fatal: false,
                    description: format!(
                        "transient dispatch failure on {device} (invocation {inv}, attempt {attempt})"
                    ),
                })
            }
            FaultKind::CompileReject | FaultKind::ThermalThrottle { .. } => None,
        }
    }

    /// Consult before compiling / planning a network for `device`.
    pub fn on_compile(&self, device: DeviceKind) -> Option<Fault> {
        let rule = self
            .plan
            .rules
            .iter()
            .find(|r| r.device == device && r.kind.site() == FaultSite::Compile)?;
        debug_assert!(matches!(rule.kind, FaultKind::CompileReject));
        let mut st = self.state.lock();
        st.faults[device_index(device)] += 1;
        Some(Fault {
            device,
            site: FaultSite::Compile,
            fatal: true,
            description: format!("compile rejected: {device} driver refused the network"),
        })
    }

    /// Total faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.state.lock().faults.iter().sum()
    }

    /// Faults injected on one device so far.
    pub fn faults_on(&self, device: DeviceKind) -> u64 {
        self.state.lock().faults[device_index(device)]
    }
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("faults_injected", &self.faults_injected())
            .finish()
    }
}

/// Retry policy for faulted dispatches: exponential backoff charged in
/// **simulated** microseconds (the backoff is cost-model time, not host
/// sleep).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts per invocation, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt, simulated microseconds.
    pub base_backoff_us: f64,
    /// Multiplier applied per further attempt.
    pub backoff_multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_us: 50.0,
            backoff_multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Simulated backoff charged after failed attempt `attempt` (1-based):
    /// `base * multiplier^(attempt-1)`.
    pub fn backoff_us(&self, attempt: u32) -> f64 {
        self.base_backoff_us
            * self
                .backoff_multiplier
                .powi(attempt.saturating_sub(1) as i32)
    }

    /// Whether another attempt is allowed after `attempt` failed.
    pub fn allows_retry(&self, attempt: u32) -> bool {
        attempt < self.max_attempts
    }
}

/// Per-device circuit breaker: once a device accumulates `threshold`
/// faults, the breaker opens and the fallback layer stops routing work to
/// it (degrading along the paper-ordered permutation chain instead of
/// retrying a dying device forever).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u64,
    open: [bool; 3],
    trips: u64,
}

impl CircuitBreaker {
    /// Breaker tripping after `threshold` faults per device (≥ 1).
    pub fn new(threshold: u64) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            open: [false; 3],
            trips: 0,
        }
    }

    /// Report the current fault count of `device` (from
    /// [`FaultInjector::faults_on`]); returns `true` when this report
    /// trips the breaker open (exactly once per device).
    pub fn note(&mut self, device: DeviceKind, fault_count: u64) -> bool {
        let di = device_index(device);
        if !self.open[di] && fault_count >= self.threshold {
            self.open[di] = true;
            self.trips += 1;
            return true;
        }
        false
    }

    /// Whether the breaker is open for `device`.
    pub fn is_open(&self, device: DeviceKind) -> bool {
        self.open[device_index(device)]
    }

    /// Devices tripped so far.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// The configured trip threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn plan_serde_round_trip() {
        let plan = FaultPlan::seeded(7)
            .transient_dispatch(DeviceKind::Apu, 2)
            .device_lost(DeviceKind::Gpu)
            .compile_reject(DeviceKind::Apu)
            .thermal_throttle(DeviceKind::Cpu, Some(WorkKind::MacHeavy), 2.5);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn spec_grammar_parses() {
        let plan = FaultPlan::seeded(7)
            .with_spec("apu:dispatch:transient")
            .unwrap()
            .with_spec("gpu:dispatch:device-lost")
            .unwrap()
            .with_spec("apu:compile:reject")
            .unwrap()
            .with_spec("cpu:kernel:throttle=2.5@mac")
            .unwrap();
        assert_eq!(plan.rules.len(), 4);
        assert_eq!(plan.rules[0].kind, FaultKind::Transient { max_failures: 2 });
        assert_eq!(plan.rules[1].kind, FaultKind::DeviceLost);
        assert_eq!(plan.rules[2].kind, FaultKind::CompileReject);
        assert_eq!(
            plan.rules[3],
            FaultRule {
                device: DeviceKind::Cpu,
                kind: FaultKind::ThermalThrottle { factor: 2.5 },
                work: Some(WorkKind::MacHeavy),
            }
        );
        for bad in ["apu", "nope:dispatch:transient", "apu:dispatch:nope"] {
            assert!(FaultPlan::seeded(0).with_spec(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn transient_faults_deterministic_and_recoverable() {
        let run = || {
            let inj =
                FaultInjector::new(FaultPlan::seeded(7).transient_dispatch(DeviceKind::Apu, 2));
            let mut pattern = Vec::new();
            for _ in 0..16 {
                let mut attempt = 1;
                while let Some(f) = inj.on_dispatch(DeviceKind::Apu, attempt) {
                    assert!(!f.fatal);
                    attempt += 1;
                    assert!(attempt < 16, "transient must eventually recover");
                }
                pattern.push(attempt);
            }
            (pattern, inj.faults_injected())
        };
        let (a, fa) = run();
        let (b, fb) = run();
        assert_eq!(a, b, "same seed must reproduce the fault pattern");
        assert_eq!(fa, fb);
        assert!(a[0] > 1, "first invocation always fails at least once");
        assert!(fa >= 1);
        // A different seed draws a different pattern (with 16 invocations
        // of 0..=2 failures a collision is astronomically unlikely).
        let other = {
            let inj =
                FaultInjector::new(FaultPlan::seeded(1234).transient_dispatch(DeviceKind::Apu, 2));
            let mut pattern = Vec::new();
            for _ in 0..16 {
                let mut attempt = 1;
                while inj.on_dispatch(DeviceKind::Apu, attempt).is_some() {
                    attempt += 1;
                }
                pattern.push(attempt);
            }
            pattern
        };
        assert_ne!(a, other, "different seeds should differ");
    }

    #[test]
    fn device_lost_is_fatal_and_scoped() {
        let inj = FaultInjector::new(FaultPlan::seeded(3).device_lost(DeviceKind::Apu));
        let f = inj.on_dispatch(DeviceKind::Apu, 1).unwrap();
        assert!(f.fatal);
        assert_eq!(f.site, FaultSite::Dispatch);
        assert!(inj.on_dispatch(DeviceKind::Cpu, 1).is_none());
        assert!(inj.on_compile(DeviceKind::Apu).is_none());
        assert_eq!(inj.faults_on(DeviceKind::Apu), 1);
        assert_eq!(inj.faults_on(DeviceKind::Cpu), 0);
    }

    #[test]
    fn compile_reject_hits_compile_site_only() {
        let inj = FaultInjector::new(FaultPlan::seeded(3).compile_reject(DeviceKind::Apu));
        assert!(inj.on_dispatch(DeviceKind::Apu, 1).is_none());
        let f = inj.on_compile(DeviceKind::Apu).unwrap();
        assert!(f.fatal);
        assert_eq!(f.site, FaultSite::Compile);
    }

    #[test]
    fn throttled_cost_scales_matched_cells_only() {
        use crate::cost::WorkItem;
        use crate::device::KernelClass;
        let plan =
            FaultPlan::seeded(0).thermal_throttle(DeviceKind::Apu, Some(WorkKind::MacHeavy), 3.0);
        let base = CostModel::default();
        let hot = plan.throttled_cost(base.clone());
        let w = WorkItem {
            macs: 50_000_000,
            bytes_in: 1 << 20,
            bytes_out: 1 << 18,
            int8: true,
            kind: WorkKind::MacHeavy,
        };
        let t0 = base.kernel_body_us(&w, DeviceKind::Apu, KernelClass::VendorTuned);
        let t1 = hot.kernel_body_us(&w, DeviceKind::Apu, KernelClass::VendorTuned);
        assert!((t1 - 3.0 * t0).abs() < 1e-9 * t0.max(1.0), "{t1} != 3*{t0}");
        // Other device untouched.
        let c0 = base.kernel_body_us(&w, DeviceKind::Cpu, KernelClass::VendorTuned);
        let c1 = hot.kernel_body_us(&w, DeviceKind::Cpu, KernelClass::VendorTuned);
        assert_eq!(c0, c1);
        // Empty plan changes nothing.
        assert_eq!(
            FaultPlan::seeded(9)
                .throttled_cost(base.clone())
                .kernel_body_us(&w, DeviceKind::Apu, KernelClass::VendorTuned),
            t0
        );
    }

    #[test]
    fn retry_policy_backoff_grows_exponentially() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_us(1), 50.0);
        assert_eq!(p.backoff_us(2), 100.0);
        assert_eq!(p.backoff_us(3), 200.0);
        assert!(p.allows_retry(1));
        assert!(!p.allows_retry(4));
    }

    #[test]
    fn breaker_trips_once_per_device() {
        let mut b = CircuitBreaker::new(3);
        assert!(!b.note(DeviceKind::Apu, 2));
        assert!(!b.is_open(DeviceKind::Apu));
        assert!(b.note(DeviceKind::Apu, 3), "threshold reached trips");
        assert!(b.is_open(DeviceKind::Apu));
        assert!(!b.note(DeviceKind::Apu, 5), "only trips once");
        assert!(!b.is_open(DeviceKind::Cpu));
        assert_eq!(b.trips(), 1);
    }
}
