//! Simulated clock, per-resource reservations and Gantt segments.
//!
//! The pipeline scheduler (paper §5.2, Fig. 5) needs exactly this: models
//! may not use the same resource simultaneously, and the schedule is read
//! as colored intervals per resource.

use crate::device::DeviceKind;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A simple monotonically advancing clock in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimClock {
    now_us: f64,
}

impl SimClock {
    /// New clock at t = 0.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current time, microseconds.
    pub fn now_us(&self) -> f64 {
        self.now_us
    }

    /// Advance by a non-negative duration.
    pub fn advance(&mut self, us: f64) {
        debug_assert!(us >= 0.0, "cannot advance clock backwards");
        self.now_us += us;
    }
}

/// One executed interval on a resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// The resource (device) occupied.
    pub device: DeviceKind,
    /// Start time, microseconds.
    pub start_us: f64,
    /// End time, microseconds.
    pub end_us: f64,
    /// Human-readable label ("obj-det frame 3", "nir_0", ...).
    pub label: String,
}

impl Segment {
    /// Duration in microseconds.
    pub fn duration_us(&self) -> f64 {
        self.end_us - self.start_us
    }
}

/// Resource-exclusive timeline: reservations never overlap per device.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    busy_until: HashMap<DeviceKind, f64>,
    segments: Vec<Segment>,
}

impl Timeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Earliest time `device` is free.
    pub fn free_at(&self, device: DeviceKind) -> f64 {
        self.busy_until.get(&device).copied().unwrap_or(0.0)
    }

    /// Reserve `device` for `duration_us`, starting no earlier than
    /// `earliest_us`. Returns the actual `(start, end)`.
    pub fn reserve(
        &mut self,
        device: DeviceKind,
        earliest_us: f64,
        duration_us: f64,
        label: impl Into<String>,
    ) -> (f64, f64) {
        debug_assert!(duration_us >= 0.0);
        let start = self.free_at(device).max(earliest_us);
        let end = start + duration_us;
        self.busy_until.insert(device, end);
        self.segments.push(Segment {
            device,
            start_us: start,
            end_us: end,
            label: label.into(),
        });
        (start, end)
    }

    /// Reserve several devices *simultaneously* (a CPU+APU co-run): the
    /// start is the earliest instant every device is free.
    pub fn reserve_joint(
        &mut self,
        devices: &[DeviceKind],
        earliest_us: f64,
        duration_us: f64,
        label: impl Into<String>,
    ) -> (f64, f64) {
        let label = label.into();
        let start = devices
            .iter()
            .map(|&d| self.free_at(d))
            .fold(earliest_us, f64::max);
        let end = start + duration_us;
        for &d in devices {
            self.busy_until.insert(d, end);
            self.segments.push(Segment {
                device: d,
                start_us: start,
                end_us: end,
                label: label.clone(),
            });
        }
        (start, end)
    }

    /// All recorded segments in reservation order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Completion time of the whole timeline (max end over segments).
    pub fn makespan_us(&self) -> f64 {
        self.segments.iter().map(|s| s.end_us).fold(0.0, f64::max)
    }

    /// Total time `device` is occupied. Per-device segments never overlap
    /// (the exclusivity invariant), so this is a plain duration sum.
    pub fn busy_us(&self, device: DeviceKind) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.device == device)
            .map(Segment::duration_us)
            .sum()
    }

    /// Idle time of `device` within the timeline's makespan.
    pub fn idle_us(&self, device: DeviceKind) -> f64 {
        (self.makespan_us() - self.busy_us(device)).max(0.0)
    }

    /// Idle gaps of `device` as `(start, end)` intervals: the leading gap
    /// from t=0, every hole between consecutive reservations, and the
    /// trailing gap up to the makespan. Zero-width gaps are dropped.
    pub fn gaps(&self, device: DeviceKind) -> Vec<(f64, f64)> {
        let mut segs: Vec<&Segment> = self
            .segments
            .iter()
            .filter(|s| s.device == device)
            .collect();
        segs.sort_by(|a, b| a.start_us.partial_cmp(&b.start_us).unwrap());
        let mut gaps = Vec::new();
        let mut cursor = 0.0f64;
        for s in segs {
            if s.start_us > cursor + 1e-9 {
                gaps.push((cursor, s.start_us));
            }
            cursor = cursor.max(s.end_us);
        }
        let span = self.makespan_us();
        if span > cursor + 1e-9 {
            gaps.push((cursor, span));
        }
        gaps
    }

    /// Verify the exclusivity invariant: no two segments on the same
    /// device overlap. Returns the first violating pair if any.
    pub fn check_exclusive(&self) -> Option<(Segment, Segment)> {
        let mut per_dev: HashMap<DeviceKind, Vec<&Segment>> = HashMap::new();
        for s in &self.segments {
            per_dev.entry(s.device).or_default().push(s);
        }
        for segs in per_dev.values_mut() {
            segs.sort_by(|a, b| a.start_us.partial_cmp(&b.start_us).unwrap());
            for w in segs.windows(2) {
                if w[0].end_us > w[1].start_us + 1e-9 {
                    return Some(((*w[0]).clone(), (*w[1]).clone()));
                }
            }
        }
        None
    }

    /// Render a coarse ASCII Gantt chart (for the Fig. 5 harness).
    pub fn ascii_gantt(&self, cols: usize) -> String {
        let span = self.makespan_us().max(1e-9);
        let mut out = String::new();
        for d in DeviceKind::ALL {
            let mut row = vec!['.'; cols];
            for s in self.segments.iter().filter(|s| s.device == d) {
                let a = ((s.start_us / span) * cols as f64) as usize;
                let b = (((s.end_us / span) * cols as f64).ceil() as usize).min(cols);
                let ch = s.label.chars().next().unwrap_or('#');
                for c in row.iter_mut().take(b).skip(a.min(cols)) {
                    *c = ch;
                }
            }
            out.push_str(&format!(
                "{:>4} |{}|\n",
                d.name(),
                row.iter().collect::<String>()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances() {
        let mut c = SimClock::new();
        c.advance(10.0);
        c.advance(5.0);
        assert!((c.now_us() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn reservations_serialize_on_one_device() {
        let mut t = Timeline::new();
        let (s1, e1) = t.reserve(DeviceKind::Cpu, 0.0, 100.0, "a");
        let (s2, _e2) = t.reserve(DeviceKind::Cpu, 0.0, 50.0, "b");
        assert_eq!(s1, 0.0);
        assert_eq!(s2, e1, "second reservation must wait");
        assert!(t.check_exclusive().is_none());
    }

    #[test]
    fn different_devices_overlap_freely() {
        let mut t = Timeline::new();
        t.reserve(DeviceKind::Cpu, 0.0, 100.0, "a");
        let (s, _) = t.reserve(DeviceKind::Apu, 0.0, 100.0, "b");
        assert_eq!(s, 0.0);
        assert!(t.check_exclusive().is_none());
    }

    #[test]
    fn joint_reservation_waits_for_all() {
        let mut t = Timeline::new();
        t.reserve(DeviceKind::Cpu, 0.0, 100.0, "a");
        t.reserve(DeviceKind::Apu, 0.0, 40.0, "b");
        let (s, e) = t.reserve_joint(&[DeviceKind::Cpu, DeviceKind::Apu], 0.0, 10.0, "c");
        assert_eq!(s, 100.0, "joint run starts when the busiest device frees");
        assert_eq!(e, 110.0);
        assert!(t.check_exclusive().is_none());
    }

    #[test]
    fn makespan_is_max_end() {
        let mut t = Timeline::new();
        t.reserve(DeviceKind::Cpu, 0.0, 100.0, "a");
        t.reserve(DeviceKind::Apu, 30.0, 200.0, "b");
        assert!((t.makespan_us() - 230.0).abs() < 1e-9);
    }

    #[test]
    fn earliest_constraint_respected() {
        let mut t = Timeline::new();
        let (s, _) = t.reserve(DeviceKind::Gpu, 500.0, 10.0, "x");
        assert_eq!(s, 500.0);
    }

    #[test]
    fn busy_idle_and_gaps_partition_the_makespan() {
        let mut t = Timeline::new();
        t.reserve(DeviceKind::Cpu, 0.0, 50.0, "a");
        t.reserve(DeviceKind::Cpu, 80.0, 20.0, "b");
        t.reserve(DeviceKind::Apu, 0.0, 200.0, "c");
        assert!((t.busy_us(DeviceKind::Cpu) - 70.0).abs() < 1e-9);
        assert!((t.idle_us(DeviceKind::Cpu) - 130.0).abs() < 1e-9);
        assert!(
            (t.busy_us(DeviceKind::Cpu) + t.idle_us(DeviceKind::Cpu) - t.makespan_us()).abs()
                < 1e-9
        );
        // CPU gaps: (50, 80) between reservations, (100, 200) trailing.
        let gaps = t.gaps(DeviceKind::Cpu);
        assert_eq!(gaps.len(), 2);
        assert!((gaps[0].0 - 50.0).abs() < 1e-9 && (gaps[0].1 - 80.0).abs() < 1e-9);
        assert!((gaps[1].0 - 100.0).abs() < 1e-9 && (gaps[1].1 - 200.0).abs() < 1e-9);
        // The APU is saturated: no gaps, zero idle.
        assert!(t.gaps(DeviceKind::Apu).is_empty());
        assert!(t.idle_us(DeviceKind::Apu) < 1e-9);
        // A never-used device is one whole-span gap.
        assert_eq!(t.gaps(DeviceKind::Gpu), vec![(0.0, 200.0)]);
    }

    #[test]
    fn ascii_gantt_renders() {
        let mut t = Timeline::new();
        t.reserve(DeviceKind::Cpu, 0.0, 50.0, "obj");
        t.reserve(DeviceKind::Apu, 0.0, 100.0, "emo");
        let g = t.ascii_gantt(20);
        assert!(g.contains("cpu"));
        assert!(g.contains('o'));
        assert!(g.contains('e'));
    }
}
