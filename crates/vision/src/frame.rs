//! Synthetic video with ground truth.
//!
//! Each frame embeds zero or more bright "person" regions; a person may
//! carry a face, and a face is either *real* (textured concentric-ring
//! pattern) or a *presentation attack* (the same pattern prin­ted flat —
//! low texture variance), so liveness is genuinely decidable from pixels.

use serde::{Deserialize, Serialize};
use tvmnp_tensor::rng::TensorRng;
use tvmnp_tensor::Tensor;

/// Face ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaceKind {
    /// A live face (textured).
    Real,
    /// A spoofed/printed face (flat texture).
    Spoof,
}

/// One ground-truth object in a frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GtObject {
    /// Object bounding box (x, y, w, h) in pixels.
    pub bbox: (usize, usize, usize, usize),
    /// Face region inside the object, if any.
    pub face: Option<((usize, usize, usize, usize), FaceKind)>,
}

/// One RGB frame with ground truth.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame index within the video.
    pub index: usize,
    /// Pixels, `[1, 3, h, w]` float32 in `[0, 1]`.
    pub pixels: Tensor,
    /// Ground-truth objects.
    pub objects: Vec<GtObject>,
}

impl Frame {
    /// Frame height.
    pub fn height(&self) -> usize {
        self.pixels.shape().dims()[2]
    }

    /// Frame width.
    pub fn width(&self) -> usize {
        self.pixels.shape().dims()[3]
    }

    /// Grayscale view, `[h, w]` row-major.
    pub fn gray(&self) -> Vec<f32> {
        let d = self.pixels.shape().dims();
        let (h, w) = (d[2], d[3]);
        let px = self.pixels.as_f32().unwrap();
        let mut g = vec![0.0f32; h * w];
        for y in 0..h {
            for x in 0..w {
                let r = px[y * w + x];
                let gch = px[h * w + y * w + x];
                let b = px[2 * h * w + y * w + x];
                g[y * w + x] = 0.299 * r + 0.587 * gch + 0.114 * b;
            }
        }
        g
    }

    /// Crop `(x, y, w, h)` and bilinear-resize to `(out_h, out_w)` RGB.
    pub fn crop_resized(
        &self,
        bbox: (usize, usize, usize, usize),
        out_h: usize,
        out_w: usize,
    ) -> Tensor {
        let (x, y, w, h) = bbox;
        let x1 = (x + w).min(self.width());
        let y1 = (y + h).min(self.height());
        let crop = tvmnp_tensor::kernels::slice(
            &self.pixels,
            &[
                0,
                0,
                y.min(y1.saturating_sub(1)),
                x.min(x1.saturating_sub(1)),
            ],
            &[1, 3, y1.max(y + 1), x1.max(x + 1)],
        )
        .expect("crop in range");
        tvmnp_tensor::kernels::resize2d(
            &crop,
            out_h,
            out_w,
            tvmnp_tensor::kernels::ResizeMethod::Bilinear,
        )
        .expect("resize")
    }

    /// Grayscale crop resized, `[1, 1, out, out]`.
    pub fn gray_crop_resized(&self, bbox: (usize, usize, usize, usize), out: usize) -> Tensor {
        let rgb = self.crop_resized(bbox, out, out);
        let px = rgb.as_f32().unwrap();
        let hw = out * out;
        let mut g = vec![0.0f32; hw];
        for i in 0..hw {
            g[i] = 0.299 * px[i] + 0.587 * px[hw + i] + 0.114 * px[2 * hw + i];
        }
        Tensor::from_f32([1, 1, out, out], g).unwrap()
    }
}

/// The canonical face side length in synthetic frames.
pub const FACE_SIZE: usize = 16;

/// Render the canonical face pattern into `gray` (h×w) at `(fx, fy)`.
/// Real faces get per-pixel texture noise; spoofs are flat.
fn draw_face(
    gray: &mut [f32],
    w: usize,
    fx: usize,
    fy: usize,
    kind: FaceKind,
    rng: &mut TensorRng,
) {
    let noise = rng.uniform_f32([FACE_SIZE * FACE_SIZE], -0.22, 0.22);
    let nv = noise.as_f32().unwrap();
    let c = (FACE_SIZE / 2) as f32 - 0.5;
    for dy in 0..FACE_SIZE {
        for dx in 0..FACE_SIZE {
            let r = (((dx as f32 - c).powi(2) + (dy as f32 - c).powi(2)).sqrt() / c).min(1.0);
            // Concentric rings: a distinctive, correlatable pattern.
            let ring = 0.55 + 0.35 * (r * std::f32::consts::PI * 2.5).cos();
            let v = match kind {
                FaceKind::Real => (ring + nv[dy * FACE_SIZE + dx]).clamp(0.0, 1.0),
                FaceKind::Spoof => ring.clamp(0.0, 1.0),
            };
            gray[(fy + dy) * w + fx + dx] = v;
        }
    }
}

/// The noiseless face template used by the detector.
pub fn face_template() -> Tensor {
    let mut g = vec![0.0f32; FACE_SIZE * FACE_SIZE];
    let c = (FACE_SIZE / 2) as f32 - 0.5;
    for dy in 0..FACE_SIZE {
        for dx in 0..FACE_SIZE {
            let r = (((dx as f32 - c).powi(2) + (dy as f32 - c).powi(2)).sqrt() / c).min(1.0);
            g[dy * FACE_SIZE + dx] = 0.55 + 0.35 * (r * std::f32::consts::PI * 2.5).cos();
        }
    }
    Tensor::from_f32([FACE_SIZE, FACE_SIZE], g).unwrap()
}

/// Deterministic synthetic video generator.
pub struct SyntheticVideo {
    rng: TensorRng,
    width: usize,
    height: usize,
    next_index: usize,
}

impl SyntheticVideo {
    /// New generator for `width`×`height` frames.
    pub fn new(seed: u64, width: usize, height: usize) -> Self {
        assert!(
            width >= 48 && height >= 48,
            "frames must fit a person + face"
        );
        SyntheticVideo {
            rng: TensorRng::new(seed),
            width,
            height,
            next_index: 0,
        }
    }

    /// Generate the next frame. Cycle of scenes: empty → person without
    /// face → person with real face → person with spoof face.
    pub fn next_frame(&mut self) -> Frame {
        let idx = self.next_index;
        self.next_index += 1;
        let (w, h) = (self.width, self.height);
        // Dim background noise.
        let bg = self.rng.uniform_f32([h * w], 0.05, 0.15);
        let mut gray = bg.as_f32().unwrap().to_vec();
        let mut objects = Vec::new();

        let scene = idx % 4;
        if scene > 0 {
            // One bright person region, position varies with the frame.
            let pw = 28.min(w - 4);
            let ph = 36.min(h - 4);
            let px = 2 + (idx * 7) % (w - pw - 2);
            let py = 2 + (idx * 5) % (h - ph - 2);
            for dy in 0..ph {
                for dx in 0..pw {
                    // Bright body with a vertical gradient.
                    gray[(py + dy) * w + px + dx] = 0.55 + 0.25 * (dy as f32 / ph as f32);
                }
            }
            let face = if scene >= 2 {
                let kind = if scene == 2 {
                    FaceKind::Real
                } else {
                    FaceKind::Spoof
                };
                let fx = px + (pw - FACE_SIZE) / 2;
                let fy = py + 2;
                draw_face(&mut gray, w, fx, fy, kind, &mut self.rng);
                Some(((fx, fy, FACE_SIZE, FACE_SIZE), kind))
            } else {
                None
            };
            objects.push(GtObject {
                bbox: (px, py, pw, ph),
                face,
            });
        }

        // Grayscale → RGB with small channel offsets.
        let mut rgb = vec![0.0f32; 3 * h * w];
        for i in 0..h * w {
            rgb[i] = (gray[i] * 1.02).min(1.0);
            rgb[h * w + i] = gray[i];
            rgb[2 * h * w + i] = (gray[i] * 0.98).max(0.0);
        }
        Frame {
            index: idx,
            pixels: Tensor::from_f32([1, 3, h, w], rgb).unwrap(),
            objects,
        }
    }

    /// Generate `n` frames.
    pub fn frames(&mut self, n: usize) -> Vec<Frame> {
        (0..n).map(|_| self.next_frame()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = SyntheticVideo::new(9, 64, 64).next_frame();
        let b = SyntheticVideo::new(9, 64, 64).next_frame();
        assert!(a.pixels.bit_eq(&b.pixels));
    }

    #[test]
    fn scene_cycle() {
        let mut v = SyntheticVideo::new(9, 64, 64);
        let frames = v.frames(4);
        assert!(frames[0].objects.is_empty());
        assert!(frames[1].objects[0].face.is_none());
        assert_eq!(frames[2].objects[0].face.unwrap().1, FaceKind::Real);
        assert_eq!(frames[3].objects[0].face.unwrap().1, FaceKind::Spoof);
    }

    #[test]
    fn real_faces_have_more_texture_than_spoofs() {
        let mut v = SyntheticVideo::new(9, 64, 64);
        let frames = v.frames(8);
        let variance = |f: &Frame, bbox: (usize, usize, usize, usize)| {
            let crop = f.gray_crop_resized(bbox, FACE_SIZE);
            let g = crop.as_f32().unwrap();
            let mean = g.iter().sum::<f32>() / g.len() as f32;
            // High-frequency energy: mean squared diff of horizontal neighbours.
            let mut hf = 0.0f32;
            for y in 0..FACE_SIZE {
                for x in 1..FACE_SIZE {
                    let d = g[y * FACE_SIZE + x] - g[y * FACE_SIZE + x - 1];
                    hf += d * d;
                }
            }
            let _ = mean;
            hf
        };
        let real = &frames[2];
        let spoof = &frames[3];
        let vr = variance(real, real.objects[0].face.unwrap().0);
        let vs = variance(spoof, spoof.objects[0].face.unwrap().0);
        assert!(vr > 1.5 * vs, "real {vr} vs spoof {vs}");
    }

    #[test]
    fn crop_resize_shapes() {
        let mut v = SyntheticVideo::new(1, 64, 64);
        let f = v.next_frame();
        let c = f.crop_resized((4, 4, 20, 20), 32, 32);
        assert_eq!(c.shape().dims(), &[1, 3, 32, 32]);
        let g = f.gray_crop_resized((4, 4, 20, 20), 48);
        assert_eq!(g.shape().dims(), &[1, 1, 48, 48]);
    }

    #[test]
    fn pixels_in_unit_range() {
        let mut v = SyntheticVideo::new(5, 64, 64);
        for f in v.frames(4) {
            assert!(f
                .pixels
                .as_f32()
                .unwrap()
                .iter()
                .all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}
