//! Classical detectors: bounding boxes, IoU, template-correlation face
//! detection, and luminance-saliency object localization.
//!
//! The paper pairs the DNN object detector with a separate face detector
//! and gates on box overlap (Listing 5: "if the object detection model box
//! overlapped the face detector box, we would consider it as a possible
//! candidate for a human face").

use crate::frame::{face_template, Frame, FACE_SIZE};
use serde::{Deserialize, Serialize};

/// An axis-aligned box in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    /// Left.
    pub x: usize,
    /// Top.
    pub y: usize,
    /// Width.
    pub w: usize,
    /// Height.
    pub h: usize,
}

impl BBox {
    /// Construct.
    pub fn new(x: usize, y: usize, w: usize, h: usize) -> Self {
        BBox { x, y, w, h }
    }

    /// From a ground-truth tuple.
    pub fn from_tuple(t: (usize, usize, usize, usize)) -> Self {
        BBox {
            x: t.0,
            y: t.1,
            w: t.2,
            h: t.3,
        }
    }

    /// As a tuple.
    pub fn tuple(&self) -> (usize, usize, usize, usize) {
        (self.x, self.y, self.w, self.h)
    }

    /// Area in pixels.
    pub fn area(&self) -> usize {
        self.w * self.h
    }

    /// Intersection area with another box.
    pub fn intersection(&self, o: &BBox) -> usize {
        let x0 = self.x.max(o.x);
        let y0 = self.y.max(o.y);
        let x1 = (self.x + self.w).min(o.x + o.w);
        let y1 = (self.y + self.h).min(o.y + o.h);
        if x1 > x0 && y1 > y0 {
            (x1 - x0) * (y1 - y0)
        } else {
            0
        }
    }

    /// Whether the boxes overlap at all.
    pub fn overlaps(&self, o: &BBox) -> bool {
        self.intersection(o) > 0
    }
}

/// Intersection-over-union of two boxes.
pub fn iou(a: &BBox, b: &BBox) -> f64 {
    let i = a.intersection(b) as f64;
    let u = (a.area() + b.area()) as f64 - i;
    if u <= 0.0 {
        0.0
    } else {
        i / u
    }
}

/// Normalized cross-correlation face detector: slide the canonical face
/// template over the grayscale frame; peaks above `threshold` (with local
/// non-max suppression) are face boxes.
pub fn match_faces(frame: &Frame, threshold: f32) -> Vec<BBox> {
    let g = frame.gray();
    let (h, w) = (frame.height(), frame.width());
    let tpl = face_template();
    let t = tpl.as_f32().unwrap();
    let n = (FACE_SIZE * FACE_SIZE) as f32;
    let t_mean = t.iter().sum::<f32>() / n;
    let t_dev: Vec<f32> = t.iter().map(|&v| v - t_mean).collect();
    let t_norm = t_dev.iter().map(|v| v * v).sum::<f32>().sqrt();

    let mut scores: Vec<(f32, BBox)> = Vec::new();
    let stride = 1usize;
    for y in (0..h.saturating_sub(FACE_SIZE)).step_by(stride) {
        for x in (0..w.saturating_sub(FACE_SIZE)).step_by(stride) {
            let mut mean = 0.0f32;
            for dy in 0..FACE_SIZE {
                for dx in 0..FACE_SIZE {
                    mean += g[(y + dy) * w + x + dx];
                }
            }
            mean /= n;
            let mut dot = 0.0f32;
            let mut norm = 0.0f32;
            for dy in 0..FACE_SIZE {
                for dx in 0..FACE_SIZE {
                    let v = g[(y + dy) * w + x + dx] - mean;
                    dot += v * t_dev[dy * FACE_SIZE + dx];
                    norm += v * v;
                }
            }
            let ncc = if norm > 1e-9 {
                dot / (norm.sqrt() * t_norm)
            } else {
                0.0
            };
            if ncc >= threshold {
                scores.push((ncc, BBox::new(x, y, FACE_SIZE, FACE_SIZE)));
            }
        }
    }
    // Non-max suppression: keep the best box, drop overlaps, repeat.
    scores.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let mut kept: Vec<BBox> = Vec::new();
    for (_, b) in scores {
        if kept.iter().all(|k| iou(k, &b) < 0.2) {
            kept.push(b);
        }
    }
    kept
}

/// Luminance-saliency object localization: grid cells markedly brighter
/// than the frame mean merge into object boxes (connected components of
/// bright cells).
pub fn luminance_saliency(frame: &Frame, cell: usize, factor: f32) -> Vec<BBox> {
    let g = frame.gray();
    let (h, w) = (frame.height(), frame.width());
    let global_mean = g.iter().sum::<f32>() / (h * w) as f32;
    let gh = h / cell;
    let gw = w / cell;
    let mut bright = vec![false; gh * gw];
    for cy in 0..gh {
        for cx in 0..gw {
            let mut m = 0.0f32;
            for dy in 0..cell {
                for dx in 0..cell {
                    m += g[(cy * cell + dy) * w + cx * cell + dx];
                }
            }
            m /= (cell * cell) as f32;
            bright[cy * gw + cx] = m > global_mean * factor;
        }
    }
    // Connected components (4-neighbour) over the bright grid.
    let mut seen = vec![false; gh * gw];
    let mut boxes = Vec::new();
    for start in 0..gh * gw {
        if !bright[start] || seen[start] {
            continue;
        }
        let mut stack = vec![start];
        let (mut min_x, mut min_y, mut max_x, mut max_y) = (usize::MAX, usize::MAX, 0usize, 0usize);
        while let Some(i) = stack.pop() {
            if seen[i] || !bright[i] {
                continue;
            }
            seen[i] = true;
            let (cy, cx) = (i / gw, i % gw);
            min_x = min_x.min(cx);
            min_y = min_y.min(cy);
            max_x = max_x.max(cx);
            max_y = max_y.max(cy);
            if cx > 0 {
                stack.push(i - 1);
            }
            if cx + 1 < gw {
                stack.push(i + 1);
            }
            if cy > 0 {
                stack.push(i - gw);
            }
            if cy + 1 < gh {
                stack.push(i + gw);
            }
        }
        boxes.push(BBox::new(
            min_x * cell,
            min_y * cell,
            (max_x - min_x + 1) * cell,
            (max_y - min_y + 1) * cell,
        ));
    }
    boxes
}

/// Texture-liveness feature: high-frequency energy of a grayscale crop.
/// Real (textured) faces score high; printed spoofs score low.
pub fn texture_energy(gray_crop: &tvmnp_tensor::Tensor) -> f32 {
    let d = gray_crop.shape().dims();
    let (h, w) = (d[d.len() - 2], d[d.len() - 1]);
    let g = gray_crop.to_f32();
    let v = g.as_f32().unwrap();
    let mut hf = 0.0f32;
    for y in 0..h {
        for x in 1..w {
            let diff = v[y * w + x] - v[y * w + x - 1];
            hf += diff * diff;
        }
    }
    for y in 1..h {
        for x in 0..w {
            let diff = v[y * w + x] - v[(y - 1) * w + x];
            hf += diff * diff;
        }
    }
    hf / (h * w) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FaceKind, SyntheticVideo};

    #[test]
    fn iou_identities() {
        let a = BBox::new(0, 0, 10, 10);
        assert!((iou(&a, &a) - 1.0).abs() < 1e-12);
        let b = BBox::new(20, 20, 5, 5);
        assert_eq!(iou(&a, &b), 0.0);
        let c = BBox::new(5, 0, 10, 10);
        // intersection 50, union 150.
        assert!((iou(&a, &c) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn detects_embedded_faces() {
        let mut v = SyntheticVideo::new(13, 64, 64);
        let frames = v.frames(8);
        for f in &frames {
            let found = match_faces(f, 0.6);
            let gt_faces: Vec<BBox> = f
                .objects
                .iter()
                .filter_map(|o| o.face.map(|(b, _)| BBox::from_tuple(b)))
                .collect();
            assert_eq!(found.len(), gt_faces.len(), "frame {}", f.index);
            for gt in &gt_faces {
                assert!(
                    found.iter().any(|b| iou(b, gt) > 0.4),
                    "frame {}: face at {:?} not localized (found {:?})",
                    f.index,
                    gt,
                    found
                );
            }
        }
    }

    #[test]
    fn saliency_finds_person() {
        let mut v = SyntheticVideo::new(13, 64, 64);
        let frames = v.frames(4);
        // Frame 1 has a person, frame 0 does not.
        assert!(luminance_saliency(&frames[0], 4, 1.8).is_empty());
        let boxes = luminance_saliency(&frames[1], 4, 1.8);
        assert!(!boxes.is_empty());
        let gt = BBox::from_tuple(frames[1].objects[0].bbox);
        assert!(
            boxes.iter().any(|b| iou(b, &gt) > 0.4),
            "boxes {boxes:?} vs gt {gt:?}"
        );
    }

    #[test]
    fn texture_energy_separates_real_from_spoof() {
        let mut v = SyntheticVideo::new(13, 64, 64);
        let frames = v.frames(8);
        let energy = |f: &crate::frame::Frame| {
            let (b, _) = f.objects[0].face.unwrap();
            texture_energy(&f.gray_crop_resized(b, crate::frame::FACE_SIZE))
        };
        for k in (0..8).step_by(4) {
            let real = energy(&frames[k + 2]);
            let spoof = energy(&frames[k + 3]);
            assert!(real > 1.5 * spoof, "real {real} vs spoof {spoof}");
        }
        let _ = FaceKind::Real;
    }

    #[test]
    fn overlap_gating_logic() {
        let person = BBox::new(10, 10, 30, 40);
        let face_inside = BBox::new(18, 12, 16, 16);
        let face_outside = BBox::new(50, 50, 16, 16);
        assert!(person.overlaps(&face_inside));
        assert!(!person.overlaps(&face_outside));
    }
}
