//! The application showcase (paper §4.4, Fig. 1, Listing 5).
//!
//! Per frame: object detection + face detection → overlap gating →
//! anti-spoofing on candidate faces → emotion detection on real faces.
//! The three DNNs are compiled through the BYOC stack under a
//! per-model target assignment (§5.1) and can run either sequentially or
//! through the §5.2 pipeline executor.

use crate::detect::{luminance_saliency, match_faces, texture_energy, BBox};
use crate::frame::{FaceKind, Frame, SyntheticVideo};
use std::sync::Arc;

use parking_lot::Mutex;
use tvmnp_byoc::{relay_build, ArtifactCache, CompiledModel, TargetMode};
use tvmnp_hwsim::{CostModel, DeviceKind};
use tvmnp_models::anti_spoofing::anti_spoofing_model;
use tvmnp_models::emotion::{emotion_model, EMOTIONS};
use tvmnp_models::object_detection::{mobilenet_ssd_model, ssd_input_quant};
use tvmnp_models::Model;
use tvmnp_neuropilot::TargetPolicy;
use tvmnp_runtime::ExecError;
use tvmnp_runtime::NodeCost;
use tvmnp_scheduler::pipeline::PipelineStage;
use tvmnp_scheduler::threaded::{FrameFailure, PipelineExecutor, ResourceLocks, StageSpec};
use tvmnp_tensor::{DType, Tensor};

/// Target assignment of the three showcase models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShowcaseAssignment {
    /// Object detection target.
    pub obj: TargetMode,
    /// Anti-spoofing target.
    pub spoof: TargetMode,
    /// Emotion detection target.
    pub emotion: TargetMode,
}

impl ShowcaseAssignment {
    /// The paper's §5.2 prototype: object detection forced to CPU-only,
    /// anti-spoofing on BYOC CPU+APU, emotion on the APU alone (Fig. 5's
    /// blue / yellow / green).
    pub fn paper_prototype() -> Self {
        ShowcaseAssignment {
            obj: TargetMode::Byoc(TargetPolicy::CpuOnly),
            spoof: TargetMode::Byoc(TargetPolicy::CpuApu),
            emotion: TargetMode::NeuroPilotOnly(TargetPolicy::ApuPrefer),
        }
    }

    /// The pre-pipeline greedy assignment (§5.1): every model on its
    /// fastest target, object detection sharing CPU+APU.
    pub fn greedy() -> Self {
        ShowcaseAssignment {
            obj: TargetMode::Byoc(TargetPolicy::CpuApu),
            spoof: TargetMode::Byoc(TargetPolicy::CpuApu),
            emotion: TargetMode::NeuroPilotOnly(TargetPolicy::ApuPrefer),
        }
    }
}

/// Devices a target mode occupies, for the exclusivity locks and the
/// Fig. 5 Gantt colors.
pub fn resources_of(mode: TargetMode) -> Vec<DeviceKind> {
    match mode {
        TargetMode::TvmOnly => vec![DeviceKind::Cpu],
        TargetMode::Byoc(p) | TargetMode::NeuroPilotOnly(p) => match p {
            TargetPolicy::CpuOnly => vec![DeviceKind::Cpu],
            TargetPolicy::GpuPrefer => vec![DeviceKind::Gpu],
            TargetPolicy::ApuPrefer => vec![DeviceKind::Apu],
            TargetPolicy::CpuApu => vec![DeviceKind::Cpu, DeviceKind::Apu],
        },
    }
}

/// Degraded-mode policy: per-stage simulated-time deadlines for the
/// frame flow. When a stage overruns its budget the frame is *degraded*,
/// not wedged — downstream models see an explicit
/// [`DroppedStage`] marker instead of stale tensors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedPolicy {
    /// Simulated-time budget per stage per frame, microseconds.
    /// `f64::INFINITY` disables degradation entirely.
    pub stage_deadline_us: f64,
}

impl Default for DegradedPolicy {
    fn default() -> Self {
        DegradedPolicy {
            stage_deadline_us: f64::INFINITY,
        }
    }
}

impl DegradedPolicy {
    /// Policy with the given per-stage deadline, microseconds.
    pub fn with_stage_deadline(stage_deadline_us: f64) -> Self {
        DegradedPolicy { stage_deadline_us }
    }
}

/// Explicit "stage unavailable" record for one frame: which stage was
/// dropped and why (its own overrun, or an unavailable upstream stage).
#[derive(Debug, Clone, PartialEq)]
pub struct DroppedStage {
    /// Stage name (`"obj-det"` / `"anti-spoof"` / `"emotion"`).
    pub stage: &'static str,
    /// Human-readable drop reason.
    pub reason: String,
}

/// Aggregate drop accounting over a clip.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropStats {
    /// Frames with at least one dropped stage.
    pub degraded_frames: usize,
    /// Total dropped-stage records across all frames.
    pub stages_dropped: usize,
}

/// Per-face outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FaceResult {
    /// Face box.
    pub bbox: BBox,
    /// Liveness decision.
    pub real: bool,
    /// Emotion label for real faces.
    pub emotion: Option<&'static str>,
}

/// Simulated time spent per stage for one frame, microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShowcaseTiming {
    /// Object-detection model time.
    pub obj_us: f64,
    /// Anti-spoofing model time (summed over candidate faces).
    pub spoof_us: f64,
    /// Emotion model time (summed over real faces).
    pub emotion_us: f64,
}

impl ShowcaseTiming {
    /// Total simulated time.
    pub fn total_us(&self) -> f64 {
        self.obj_us + self.spoof_us + self.emotion_us
    }
}

/// Per-frame outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameResult {
    /// Frame index.
    pub frame_index: usize,
    /// Detected object boxes.
    pub objects: Vec<BBox>,
    /// Gated face results.
    pub faces: Vec<FaceResult>,
    /// Stage timing.
    pub times: ShowcaseTiming,
    /// Stages dropped under the degraded-mode policy (empty when every
    /// stage met its deadline — always empty for [`Showcase::process_frame`]).
    pub dropped: Vec<DroppedStage>,
}

impl FrameResult {
    /// Whether any stage of this frame was dropped.
    pub fn degraded(&self) -> bool {
        !self.dropped.is_empty()
    }
}

/// Fault wiring for a serving showcase: every model run consults the
/// injector and retries transient dispatch faults per `retry`. Numerics
/// are unchanged — only simulated time absorbs the backoff.
#[derive(Clone)]
pub struct ShowcaseFaults {
    /// Shared fault source (shared so fault history spans all stages).
    pub injector: Arc<tvmnp_hwsim::FaultInjector>,
    /// Per-dispatch retry budget.
    pub retry: tvmnp_hwsim::RetryPolicy,
}

struct CompiledStage {
    model: Model,
    compiled: Mutex<CompiledModel>,
    mode: TargetMode,
}

impl CompiledStage {
    /// Run the stage model, holding its devices exclusively when the
    /// showcase carries a lock table (concurrent serving).
    fn run_model(
        &self,
        locks: &Option<ResourceLocks>,
        faults: &Option<ShowcaseFaults>,
        inputs: &std::collections::HashMap<String, Tensor>,
    ) -> Result<(Vec<Tensor>, f64), tvmnp_byoc::BuildError> {
        let execute = || match faults {
            Some(f) => {
                self.compiled
                    .lock()
                    .run_resilient(inputs, &f.injector, &f.retry, f64::INFINITY)
            }
            None => self.compiled.lock().run(inputs),
        };
        match locks {
            Some(l) => l.with_resources(&resources_of(self.mode), execute),
            None => execute(),
        }
    }
}

/// The assembled application.
pub struct Showcase {
    obj: Arc<CompiledStage>,
    spoof: Arc<CompiledStage>,
    emotion: Arc<CompiledStage>,
    liveness_threshold: f32,
    /// Device-lock table for concurrent serving: when set, every model run
    /// holds its stage's devices exclusively (the §5.2 constraint enforced
    /// across *frames*, not just across pipeline stages).
    locks: Option<ResourceLocks>,
    /// Fault wiring: when set, model runs dispatch through the injector
    /// with retries (numerics unchanged, simulated time absorbs backoff).
    faults: Option<ShowcaseFaults>,
}

fn compile(
    model: Model,
    mode: TargetMode,
    cost: &CostModel,
    cache: Option<&ArtifactCache>,
) -> Arc<CompiledStage> {
    let compiled = match cache {
        Some(cache) => cache
            .get_or_build(&model.module, mode, cost, &quant_label(&model))
            .unwrap_or_else(|e| panic!("{} fails to build for {mode}: {e}", model.name)),
        None => relay_build(&model.module, mode, cost.clone())
            .unwrap_or_else(|e| panic!("{} fails to build for {mode}: {e}", model.name)),
    };
    Arc::new(CompiledStage {
        model,
        compiled: Mutex::new(compiled),
        mode,
    })
}

/// Quant-config label of a model for the artifact-cache key.
fn quant_label(model: &Model) -> String {
    ArtifactCache::quant_label(model.input_quant)
}

impl Showcase {
    /// Build the three models (Listing 5's `build_model_on_TVM`) under the
    /// given assignment, and calibrate the liveness threshold on a short
    /// ground-truth calibration clip.
    pub fn new(seed: u64, assignment: ShowcaseAssignment, cost: &CostModel) -> Self {
        Self::build(seed, assignment, cost, None)
    }

    /// Like [`Showcase::new`], but compiled artifacts are served through
    /// `cache`: rebuilding the same showcase (another session, a fallback
    /// permutation, a second bench iteration) reuses each (model,
    /// permutation, quant) compilation instead of repeating it.
    pub fn new_cached(
        seed: u64,
        assignment: ShowcaseAssignment,
        cost: &CostModel,
        cache: &ArtifactCache,
    ) -> Self {
        Self::build(seed, assignment, cost, Some(cache))
    }

    fn build(
        seed: u64,
        assignment: ShowcaseAssignment,
        cost: &CostModel,
        cache: Option<&ArtifactCache>,
    ) -> Self {
        let obj = compile(mobilenet_ssd_model(seed), assignment.obj, cost, cache);
        let spoof = compile(
            anti_spoofing_model(seed.wrapping_add(1)),
            assignment.spoof,
            cost,
            cache,
        );
        let emotion = compile(
            emotion_model(seed.wrapping_add(2)),
            assignment.emotion,
            cost,
            cache,
        );
        let liveness_threshold = calibrate_liveness(seed.wrapping_add(3));
        Showcase {
            obj,
            spoof,
            emotion,
            liveness_threshold,
            locks: None,
            faults: None,
        }
    }

    /// Enforce device exclusivity across concurrent frames: every model
    /// run in [`Showcase::process_frame`] (and friends) will hold its
    /// stage's devices through `locks`. Required when multiple threads
    /// share one showcase (the serving pool).
    pub fn with_locks(mut self, locks: ResourceLocks) -> Self {
        self.locks = Some(locks);
        self
    }

    /// Route every model dispatch through a fault injector with retries.
    /// Transient faults are absorbed (identical outputs, extra simulated
    /// time); exhausted retries surface as a stage failure.
    pub fn with_faults(mut self, faults: ShowcaseFaults) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Per-stage analytic cost breakdowns: (stage name, devices the stage
    /// mode occupies, per-node device/µs attribution). One model
    /// invocation per entry — the serving simulator scales them by
    /// invocation counts.
    pub fn stage_breakdowns(&self) -> Vec<(&'static str, Vec<DeviceKind>, Vec<NodeCost>)> {
        vec![
            (
                "obj-det",
                resources_of(self.obj.mode),
                self.obj.compiled.lock().estimate_breakdown(),
            ),
            (
                "anti-spoof",
                resources_of(self.spoof.mode),
                self.spoof.compiled.lock().estimate_breakdown(),
            ),
            (
                "emotion",
                resources_of(self.emotion.mode),
                self.emotion.compiled.lock().estimate_breakdown(),
            ),
        ]
    }

    /// Process one frame through the Fig. 1 flow.
    pub fn process_frame(&self, frame: &Frame) -> FrameResult {
        self.process_frame_with_deadline(frame, &DegradedPolicy::default())
    }

    /// Process one frame under a degraded-mode policy: any stage whose
    /// cumulative simulated time for this frame exceeds
    /// `policy.stage_deadline_us` is dropped, and every downstream stage
    /// sees an explicit [`DroppedStage`] record instead of stale results.
    pub fn process_frame_with_deadline(
        &self,
        frame: &Frame,
        policy: &DegradedPolicy,
    ) -> FrameResult {
        let budget = policy.stage_deadline_us;
        let mut times = ShowcaseTiming::default();
        let mut dropped: Vec<DroppedStage> = Vec::new();

        // Object detection: the DNN runs on the full frame (its latency is
        // the measured quantity); localization comes from the saliency
        // detector, as the untrained SSD cannot localize (DESIGN.md).
        let obj_input = prepare_ssd_input(frame);
        let (_, t) = self
            .obj
            .run_model(
                &self.locks,
                &self.faults,
                &self.obj.model.inputs_from(obj_input),
            )
            .expect("object detection runs");
        times.obj_us += t;
        if times.obj_us > budget {
            // No detections to gate on: the whole downstream chain is
            // unavailable for this frame.
            dropped.push(DroppedStage {
                stage: "obj-det",
                reason: format!(
                    "stage took {:.1} us of a {budget:.1} us budget",
                    times.obj_us
                ),
            });
            for stage in ["anti-spoof", "emotion"] {
                dropped.push(DroppedStage {
                    stage,
                    reason: "upstream obj-det unavailable".to_string(),
                });
            }
            record_dropped_stages(&dropped);
            return FrameResult {
                frame_index: frame.index,
                objects: Vec::new(),
                faces: Vec::new(),
                times,
                dropped,
            };
        }
        let objects = luminance_saliency(frame, 4, 1.8);

        // Face detection + overlap gating (Listing 5).
        let face_boxes = match_faces(frame, 0.6);
        let candidates: Vec<BBox> = face_boxes
            .into_iter()
            .filter(|f| objects.iter().any(|o| o.overlaps(f)))
            .collect();

        let total_candidates = candidates.len();
        let mut faces = Vec::new();
        let mut emotion_dropped = false;
        for (k, bbox) in candidates.into_iter().enumerate() {
            // Anti-spoofing on the face crop.
            let crop = frame.crop_resized(bbox.tuple(), 32, 32);
            let (outs, t) = self
                .spoof
                .run_model(
                    &self.locks,
                    &self.faults,
                    &self.spoof.model.inputs_from(crop),
                )
                .expect("anti-spoofing runs");
            times.spoof_us += t;
            if times.spoof_us > budget {
                // The liveness decision arrived past the stage deadline:
                // this face and the remaining candidates are reported as
                // unavailable, not as spoofs, and emotion never sees them.
                dropped.push(DroppedStage {
                    stage: "anti-spoof",
                    reason: format!(
                        "deadline at face {} of {total_candidates} \
                         ({:.1} us of a {budget:.1} us budget)",
                        k + 1,
                        times.spoof_us
                    ),
                });
                dropped.push(DroppedStage {
                    stage: "emotion",
                    reason: "upstream anti-spoof unavailable".to_string(),
                });
                break;
            }
            let _pixel_map = &outs[0];
            // Liveness: texture feature on the same crop (the pixel map of
            // an untrained DeePixBiS is not discriminative; see DESIGN.md).
            let gray = frame.gray_crop_resized(bbox.tuple(), crate::frame::FACE_SIZE);
            let real = texture_energy(&gray) > self.liveness_threshold;

            // Emotion detection only on real faces (and only while its own
            // stage budget holds — a late label is withheld, not stale).
            let emotion = if real && !emotion_dropped {
                let e_in = frame.gray_crop_resized(bbox.tuple(), 48);
                let (e_out, t) = self
                    .emotion
                    .run_model(
                        &self.locks,
                        &self.faults,
                        &self.emotion.model.inputs_from(e_in),
                    )
                    .expect("emotion runs");
                times.emotion_us += t;
                if times.emotion_us > budget {
                    emotion_dropped = true;
                    dropped.push(DroppedStage {
                        stage: "emotion",
                        reason: format!(
                            "deadline at face {} ({:.1} us of a {budget:.1} us budget)",
                            k + 1,
                            times.emotion_us
                        ),
                    });
                    None
                } else {
                    Some(EMOTIONS[e_out[0].argmax()])
                }
            } else {
                None
            };
            faces.push(FaceResult {
                bbox,
                real,
                emotion,
            });
        }
        record_dropped_stages(&dropped);

        FrameResult {
            frame_index: frame.index,
            objects,
            faces,
            times,
            dropped,
        }
    }

    /// Sequential per-frame processing (the §4.4 baseline).
    pub fn process_video(&self, frames: &[Frame]) -> Vec<FrameResult> {
        frames.iter().map(|f| self.process_frame(f)).collect()
    }

    /// Sequential processing under a degraded-mode policy, with aggregate
    /// drop accounting for the resilience report.
    pub fn process_video_with_deadline(
        &self,
        frames: &[Frame],
        policy: &DegradedPolicy,
    ) -> (Vec<FrameResult>, DropStats) {
        let results: Vec<FrameResult> = frames
            .iter()
            .map(|f| self.process_frame_with_deadline(f, policy))
            .collect();
        let stats = DropStats {
            degraded_frames: results.iter().filter(|r| r.degraded()).count(),
            stages_dropped: results.iter().map(|r| r.dropped.len()).sum(),
        };
        (results, stats)
    }

    /// Pipelined processing: the three model stages run on their own
    /// threads with exclusive device locks (§5.2). Results are identical
    /// to [`Showcase::process_video`]; only the wall-clock schedule
    /// changes. A stage that fails (or panics) on one frame turns into
    /// [`DroppedStage`] markers for that frame alone — every other frame
    /// completes normally.
    pub fn process_video_pipelined(&self, frames: Vec<Frame>) -> Vec<FrameResult> {
        struct Item {
            frame: Frame,
            objects: Vec<BBox>,
            candidates: Vec<BBox>,
            real_flags: Vec<bool>,
            faces: Vec<FaceResult>,
            times: ShowcaseTiming,
        }

        let obj = self.obj.clone();
        let spoof = self.spoof.clone();
        let emotion = self.emotion.clone();
        let threshold = self.liveness_threshold;

        let stage1 =
            StageSpec::fallible("obj-det", &resources_of(obj.mode), move |mut it: Item| {
                let input = prepare_ssd_input(&it.frame);
                let (_, t) = obj
                    .compiled
                    .lock()
                    .run(&obj.model.inputs_from(input))
                    .map_err(|e| stage_exec_error("obj-det", e))?;
                it.times.obj_us += t;
                it.objects = luminance_saliency(&it.frame, 4, 1.8);
                let face_boxes = match_faces(&it.frame, 0.6);
                it.candidates = face_boxes
                    .into_iter()
                    .filter(|f| it.objects.iter().any(|o| o.overlaps(f)))
                    .collect();
                Ok(it)
            });
        let stage2 = StageSpec::fallible(
            "anti-spoof",
            &resources_of(spoof.mode),
            move |mut it: Item| {
                for bbox in it.candidates.clone() {
                    let crop = it.frame.crop_resized(bbox.tuple(), 32, 32);
                    let (_, t) = spoof
                        .compiled
                        .lock()
                        .run(&spoof.model.inputs_from(crop))
                        .map_err(|e| stage_exec_error("anti-spoof", e))?;
                    it.times.spoof_us += t;
                    let gray = it
                        .frame
                        .gray_crop_resized(bbox.tuple(), crate::frame::FACE_SIZE);
                    it.real_flags.push(texture_energy(&gray) > threshold);
                }
                Ok(it)
            },
        );
        let stage3 = StageSpec::fallible(
            "emotion",
            &resources_of(emotion.mode),
            move |mut it: Item| {
                for (k, bbox) in it.candidates.clone().into_iter().enumerate() {
                    let real = it.real_flags[k];
                    let label = if real {
                        let e_in = it.frame.gray_crop_resized(bbox.tuple(), 48);
                        let (out, t) = emotion
                            .compiled
                            .lock()
                            .run(&emotion.model.inputs_from(e_in))
                            .map_err(|e| stage_exec_error("emotion", e))?;
                        it.times.emotion_us += t;
                        Some(EMOTIONS[out[0].argmax()])
                    } else {
                        None
                    };
                    it.faces.push(FaceResult {
                        bbox,
                        real,
                        emotion: label,
                    });
                }
                Ok(it)
            },
        );

        let frame_indices: Vec<usize> = frames.iter().map(|f| f.index).collect();
        let items: Vec<Item> = frames
            .into_iter()
            .map(|frame| Item {
                frame,
                objects: Vec::new(),
                candidates: Vec::new(),
                real_flags: Vec::new(),
                faces: Vec::new(),
                times: ShowcaseTiming::default(),
            })
            .collect();
        let outputs = PipelineExecutor::run_with_failures(vec![stage1, stage2, stage3], items)
            .expect("pipeline infrastructure intact");
        let results: Vec<FrameResult> = outputs
            .into_iter()
            .enumerate()
            .map(|(seq, out)| match out {
                Ok(it) => FrameResult {
                    frame_index: it.frame.index,
                    objects: it.objects,
                    faces: it.faces,
                    times: it.times,
                    dropped: Vec::new(),
                },
                Err(fail) => FrameResult {
                    frame_index: frame_indices[seq],
                    objects: Vec::new(),
                    faces: Vec::new(),
                    times: ShowcaseTiming::default(),
                    dropped: failure_to_dropped(&fail),
                },
            })
            .collect();
        for r in &results {
            record_dropped_stages(&r.dropped);
        }
        results
    }

    /// Measured per-stage latencies (for the Fig. 5 simulation), taken
    /// from a representative frame containing a real face.
    pub fn stage_profile(&self, seed: u64) -> Vec<PipelineStage> {
        let mut video = SyntheticVideo::new(seed, 64, 64);
        let frames = video.frames(4);
        // Scene 2 of the cycle holds a real face → all three stages run.
        let r = self.process_frame(&frames[2]);
        vec![
            PipelineStage {
                name: "obj-det".into(),
                resources: resources_of(self.obj.mode),
                duration_us: r.times.obj_us.max(1.0),
            },
            PipelineStage {
                name: "anti-spoof".into(),
                resources: resources_of(self.spoof.mode),
                duration_us: r.times.spoof_us.max(1.0),
            },
            PipelineStage {
                name: "emotion".into(),
                resources: resources_of(self.emotion.mode),
                duration_us: r.times.emotion_us.max(1.0),
            },
        ]
    }
}

/// Translate a per-frame pipeline failure into the degraded-mode
/// vocabulary: the failing stage plus every downstream stage become
/// [`DroppedStage`] markers, mirroring the deadline-overrun path.
fn failure_to_dropped(fail: &FrameFailure) -> Vec<DroppedStage> {
    const CHAIN: [&str; 3] = ["obj-det", "anti-spoof", "emotion"];
    let at = CHAIN.iter().position(|&s| s == fail.stage).unwrap_or(0);
    let how = if fail.panicked { "panicked" } else { "failed" };
    let mut dropped = vec![DroppedStage {
        stage: CHAIN[at],
        reason: format!("stage {how} on frame {}: {}", fail.frame, fail.error),
    }];
    for &stage in &CHAIN[at + 1..] {
        dropped.push(DroppedStage {
            stage,
            reason: format!("upstream {} unavailable", CHAIN[at]),
        });
    }
    dropped
}

/// Wrap a model-run failure as a typed [`ExecError`] naming the stage,
/// preserving the typed context when the underlying error already is one.
fn stage_exec_error(stage: &str, e: tvmnp_byoc::BuildError) -> ExecError {
    match e {
        tvmnp_byoc::BuildError::Exec(err) => err.with_op(stage),
        other => ExecError::new(other.to_string()).with_op(stage),
    }
}

/// Emit one `vision.frames_dropped{stage=}` counter tick per dropped
/// stage record (no-op while telemetry is disabled).
fn record_dropped_stages(dropped: &[DroppedStage]) {
    if dropped.is_empty() || !tvmnp_telemetry::is_enabled() {
        return;
    }
    for d in dropped {
        tvmnp_telemetry::counter_add("vision.frames_dropped", &[("stage", d.stage)], 1);
    }
}

/// Resize + quantize a frame for the SSD input.
fn prepare_ssd_input(frame: &Frame) -> Tensor {
    let resized = frame.crop_resized((0, 0, frame.width(), frame.height()), 64, 64);
    resized
        .quantize(ssd_input_quant(), DType::U8)
        .expect("quantize frame")
}

/// Calibrate the liveness threshold on a labelled calibration clip:
/// geometric midpoint between real-face and spoof-face texture energies.
fn calibrate_liveness(seed: u64) -> f32 {
    let mut video = SyntheticVideo::new(seed, 64, 64);
    let frames = video.frames(8);
    let mut real = Vec::new();
    let mut spoof = Vec::new();
    for f in &frames {
        for o in &f.objects {
            if let Some((bbox, kind)) = o.face {
                let e = texture_energy(&f.gray_crop_resized(bbox, crate::frame::FACE_SIZE));
                match kind {
                    FaceKind::Real => real.push(e),
                    FaceKind::Spoof => spoof.push(e),
                }
            }
        }
    }
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
    (mean(&real) * mean(&spoof)).max(1e-12).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn showcase() -> Showcase {
        Showcase::new(
            1000,
            ShowcaseAssignment::paper_prototype(),
            &CostModel::default(),
        )
    }

    #[test]
    fn frame_flow_matches_listing5() {
        let sc = showcase();
        let mut video = SyntheticVideo::new(2000, 64, 64);
        let frames = video.frames(4);

        // Frame 0: empty scene — nothing detected, only obj-det ran.
        let r0 = sc.process_frame(&frames[0]);
        assert!(r0.objects.is_empty());
        assert!(r0.faces.is_empty());
        assert!(r0.times.obj_us > 0.0);
        assert_eq!(r0.times.spoof_us, 0.0);

        // Frame 1: person, no face — no anti-spoofing.
        let r1 = sc.process_frame(&frames[1]);
        assert!(!r1.objects.is_empty());
        assert!(r1.faces.is_empty());

        // Frame 2: real face — all three stages ran, emotion assigned.
        let r2 = sc.process_frame(&frames[2]);
        assert_eq!(r2.faces.len(), 1);
        assert!(r2.faces[0].real);
        assert!(r2.faces[0].emotion.is_some());
        assert!(r2.times.spoof_us > 0.0);
        assert!(r2.times.emotion_us > 0.0);

        // Frame 3: spoof face — anti-spoofing ran, emotion did not.
        let r3 = sc.process_frame(&frames[3]);
        assert_eq!(r3.faces.len(), 1);
        assert!(!r3.faces[0].real);
        assert!(r3.faces[0].emotion.is_none());
        assert!(r3.times.spoof_us > 0.0);
        assert_eq!(r3.times.emotion_us, 0.0);
    }

    #[test]
    fn infinite_deadline_never_degrades() {
        let sc = showcase();
        let mut video = SyntheticVideo::new(2000, 64, 64);
        let frames = video.frames(4);
        let (results, stats) = sc.process_video_with_deadline(&frames, &DegradedPolicy::default());
        assert_eq!(stats, DropStats::default());
        assert!(results.iter().all(|r| !r.degraded()));
        // Identical to the plain path.
        let plain = sc.process_video(&frames);
        for (a, b) in results.iter().zip(&plain) {
            assert_eq!(a.faces, b.faces);
            assert_eq!(a.objects, b.objects);
        }
    }

    #[test]
    fn obj_det_overrun_drops_whole_frame_chain() {
        let sc = showcase();
        let mut video = SyntheticVideo::new(2000, 64, 64);
        let frames = video.frames(4);
        // Deadline below any model's latency: obj-det always overruns.
        let policy = DegradedPolicy::with_stage_deadline(1.0);
        let r = sc.process_frame_with_deadline(&frames[2], &policy);
        assert!(r.degraded());
        assert!(r.objects.is_empty());
        assert!(r.faces.is_empty());
        let stages: Vec<&str> = r.dropped.iter().map(|d| d.stage).collect();
        assert_eq!(stages, vec!["obj-det", "anti-spoof", "emotion"]);
        // Downstream drops carry the explicit upstream-unavailable reason.
        assert!(r.dropped[1].reason.contains("obj-det unavailable"));
        // Only obj-det actually consumed simulated time.
        assert!(r.times.obj_us > 0.0);
        assert_eq!(r.times.spoof_us, 0.0);
        assert_eq!(r.times.emotion_us, 0.0);
    }

    #[test]
    fn spoof_overrun_skips_emotion_with_explicit_marker() {
        let sc = showcase();
        let mut video = SyntheticVideo::new(2000, 64, 64);
        let frames = video.frames(4);
        // Per-stage budget between obj-det's latency and the (larger)
        // anti-spoofing latency: obj-det fits, the liveness decision on
        // the real-face frame arrives past the deadline.
        let base = sc.process_frame(&frames[2]);
        assert!(base.times.spoof_us > base.times.obj_us);
        let budget = (base.times.obj_us + base.times.spoof_us) / 2.0;
        let policy = DegradedPolicy::with_stage_deadline(budget);
        let r = sc.process_frame_with_deadline(&frames[2], &policy);
        assert!(r.degraded());
        // Objects survived (obj-det met its budget) …
        assert_eq!(r.objects, base.objects);
        // … but the face is unavailable, not misclassified as spoof.
        assert!(r.faces.is_empty());
        let stages: Vec<&str> = r.dropped.iter().map(|d| d.stage).collect();
        assert_eq!(stages, vec!["anti-spoof", "emotion"]);
        assert!(r.dropped[0].reason.contains("deadline"));
        assert!(r.dropped[1].reason.contains("anti-spoof unavailable"));
        // Emotion never ran.
        assert_eq!(r.times.emotion_us, 0.0);
        // Deterministic: same inputs, same policy, same outcome.
        let r2 = sc.process_frame_with_deadline(&frames[2], &policy);
        assert_eq!(r.faces, r2.faces);
        assert_eq!(r.dropped, r2.dropped);
    }

    #[test]
    fn drop_stats_account_degraded_frames() {
        let sc = showcase();
        let mut video = SyntheticVideo::new(2000, 64, 64);
        let frames = video.frames(4);
        let policy = DegradedPolicy::with_stage_deadline(1.0);
        let (results, stats) = sc.process_video_with_deadline(&frames, &policy);
        // Every frame runs obj-det, and 1 us is under any model latency.
        assert_eq!(stats.degraded_frames, results.len());
        assert_eq!(stats.stages_dropped, 3 * results.len());
    }

    #[test]
    fn pipelined_results_match_sequential() {
        let sc = showcase();
        let mut video = SyntheticVideo::new(2000, 64, 64);
        let frames = video.frames(8);
        let seq = sc.process_video(&frames);
        let pipe = sc.process_video_pipelined(frames);
        assert_eq!(seq.len(), pipe.len());
        for (a, b) in seq.iter().zip(&pipe) {
            assert_eq!(a.frame_index, b.frame_index);
            assert_eq!(a.objects, b.objects);
            assert_eq!(a.faces, b.faces);
        }
    }

    #[test]
    fn stage_profile_has_three_stages_with_paper_resources() {
        let sc = showcase();
        let stages = sc.stage_profile(2000);
        assert_eq!(stages.len(), 3);
        assert_eq!(stages[0].resources, vec![DeviceKind::Cpu]);
        assert_eq!(stages[1].resources, vec![DeviceKind::Cpu, DeviceKind::Apu]);
        assert_eq!(stages[2].resources, vec![DeviceKind::Apu]);
        assert!(stages.iter().all(|s| s.duration_us > 0.0));
    }

    #[test]
    fn anti_spoof_is_slowest_model_of_the_three() {
        // Fig. 4's observation: the anti-spoofing model's inference time
        // exceeds the other two (many subgraphs).
        let sc = showcase();
        let stages = sc.stage_profile(2000);
        let spoof = stages[1].duration_us;
        assert!(
            spoof > stages[0].duration_us,
            "spoof {} vs obj {}",
            spoof,
            stages[0].duration_us
        );
        assert!(
            spoof > stages[2].duration_us,
            "spoof {} vs emo {}",
            spoof,
            stages[2].duration_us
        );
    }
}
