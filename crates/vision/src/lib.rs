//! # tvmnp-vision
//!
//! The application-showcase layer (paper §4, Fig. 1): synthetic video,
//! classical detectors, and the three-model pipeline of Listing 5.
//!
//! Substitutions (documented in DESIGN.md): the paper feeds real camera
//! video through OpenCV's face detector and pretrained DNNs. Here video is
//! *synthetic* with known ground truth ([`frame`]); face detection is a
//! real template-correlation detector and object localization a real
//! luminance-saliency detector ([`detect`]); the three DNNs run on the
//! compiled BYOC stack for every frame (their simulated latency is what
//! Figs. 4/5 measure), while the *liveness* decision combines the
//! anti-spoofing network's output with a texture-variance feature that is
//! discriminative on the synthetic faces — untrained weights cannot be,
//! and the paper's measured quantity is latency, not accuracy.

pub mod app;
pub mod detect;
pub mod frame;

pub use app::{
    resources_of, DegradedPolicy, DropStats, DroppedStage, FaceResult, FrameResult, Showcase,
    ShowcaseAssignment, ShowcaseFaults, ShowcaseTiming,
};
pub use detect::{iou, luminance_saliency, match_faces, BBox};
pub use frame::{FaceKind, Frame, GtObject, SyntheticVideo};
