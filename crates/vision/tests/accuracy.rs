//! Detection-quality evaluation over a long synthetic video: the classical
//! detectors and the liveness feature must be *correct*, not just present,
//! and the full application must gate exactly as Listing 5 prescribes.

use tvmnp_hwsim::CostModel;
use tvmnp_vision::detect::{iou, luminance_saliency, match_faces, texture_energy, BBox};
use tvmnp_vision::frame::{FaceKind, SyntheticVideo, FACE_SIZE};
use tvmnp_vision::{Showcase, ShowcaseAssignment};

const FRAMES: usize = 40;

#[test]
fn face_detector_perfect_on_synthetic_video() {
    let mut video = SyntheticVideo::new(7777, 64, 64);
    let frames = video.frames(FRAMES);
    let (mut tp, mut fp, mut fnn) = (0usize, 0usize, 0usize);
    for f in &frames {
        let found = match_faces(f, 0.6);
        let gt: Vec<BBox> = f
            .objects
            .iter()
            .filter_map(|o| o.face.map(|(b, _)| BBox::from_tuple(b)))
            .collect();
        for g in &gt {
            if found.iter().any(|b| iou(b, g) > 0.4) {
                tp += 1;
            } else {
                fnn += 1;
            }
        }
        for b in &found {
            if !gt.iter().any(|g| iou(b, g) > 0.4) {
                fp += 1;
            }
        }
    }
    assert_eq!(fnn, 0, "missed faces");
    assert_eq!(fp, 0, "false positives");
    assert_eq!(tp, FRAMES / 2, "two faces per 4-frame scene cycle");
}

#[test]
fn saliency_localizer_high_recall() {
    let mut video = SyntheticVideo::new(8888, 64, 64);
    let frames = video.frames(FRAMES);
    let mut found_persons = 0usize;
    let mut total_persons = 0usize;
    let mut empty_frame_fps = 0usize;
    for f in &frames {
        let boxes = luminance_saliency(f, 4, 1.8);
        if f.objects.is_empty() {
            empty_frame_fps += boxes.len();
        }
        for o in &f.objects {
            total_persons += 1;
            let gt = BBox::from_tuple(o.bbox);
            if boxes.iter().any(|b| iou(b, &gt) > 0.4) {
                found_persons += 1;
            }
        }
    }
    assert_eq!(found_persons, total_persons, "recall must be 1.0");
    assert_eq!(empty_frame_fps, 0, "no saliency boxes on empty frames");
}

#[test]
fn liveness_feature_separates_perfectly() {
    let mut video = SyntheticVideo::new(9999, 64, 64);
    let frames = video.frames(FRAMES);
    let mut real_energies = Vec::new();
    let mut spoof_energies = Vec::new();
    for f in &frames {
        for o in &f.objects {
            if let Some((bbox, kind)) = o.face {
                let e = texture_energy(&f.gray_crop_resized(bbox, FACE_SIZE));
                match kind {
                    FaceKind::Real => real_energies.push(e),
                    FaceKind::Spoof => spoof_energies.push(e),
                }
            }
        }
    }
    let min_real = real_energies.iter().cloned().fold(f32::INFINITY, f32::min);
    let max_spoof = spoof_energies.iter().cloned().fold(0.0f32, f32::max);
    assert!(
        min_real > max_spoof,
        "feature must linearly separate: min real {min_real} vs max spoof {max_spoof}"
    );
}

#[test]
fn application_decisions_match_ground_truth_over_long_video() {
    let cost = CostModel::default();
    let showcase = Showcase::new(4242, ShowcaseAssignment::paper_prototype(), &cost);
    let mut video = SyntheticVideo::new(2468, 64, 64);
    let frames = video.frames(24);
    let results = showcase.process_video(&frames);
    for (f, r) in frames.iter().zip(&results) {
        let gt_face = f.objects.iter().find_map(|o| o.face);
        match gt_face {
            None => assert!(r.faces.is_empty(), "frame {}: phantom face", f.index),
            Some((_, kind)) => {
                assert_eq!(r.faces.len(), 1, "frame {}: exactly one face", f.index);
                let face = &r.faces[0];
                match kind {
                    FaceKind::Real => {
                        assert!(face.real, "frame {}: real face marked spoof", f.index);
                        assert!(face.emotion.is_some(), "frame {}: no emotion", f.index);
                    }
                    FaceKind::Spoof => {
                        assert!(!face.real, "frame {}: spoof passed", f.index);
                        assert!(
                            face.emotion.is_none(),
                            "frame {}: emotion on spoof",
                            f.index
                        );
                    }
                }
            }
        }
    }
    // Deterministic emotion: the same (untrained) model must assign the
    // same label to every identical real-face crop pattern class.
    let labels: Vec<&str> = results
        .iter()
        .flat_map(|r| &r.faces)
        .filter_map(|f| f.emotion)
        .collect();
    assert!(!labels.is_empty());
}
