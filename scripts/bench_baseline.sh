#!/usr/bin/env bash
# Record (or refresh) the benchmark baselines: one BENCH_<workload>.json
# per figure workload, written at the repo root. The simulation is
# deterministic, so re-running on the same commit reproduces the files
# byte-for-byte — commit the diffs only when a change is intentional.
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${RUNS:-5}"

for workload in fig4 fig5 fig6 sched serve; do
    cargo run --release -q -p tvmnp-bench --bin bench -- \
        --workload "$workload" --runs "$RUNS" \
        --bench-out "BENCH_${workload}.json"
done
