#!/usr/bin/env bash
# Tier-1 CI gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy -- -D warnings

# Bench smoke: one workload against the checked-in baseline. Warn-only
# for latency drift — the hard gate is scripts/bench_baseline.sh + a
# reviewed diff; this step only proves the harness runs and surfaces
# drift in the CI log. --fail-on-missing is a hard gate regardless: a
# baseline metric the run never produced means a workload was silently
# dropped, which --warn-only must not wave through.
cargo run --release -q -p tvmnp-bench --bin bench -- \
    --workload fig6 --runs 2 --check-against BENCH_fig6.json --warn-only \
    --fail-on-missing

# Serving-throughput smoke: frames/sec + cache hit rate against the
# checked-in baseline. Warn-only, same rationale as above; the workload
# itself hard-fails if concurrent outputs diverge from sequential.
cargo run --release -q -p tvmnp-bench --bin bench -- \
    --workload serve --runs 2 --check-against BENCH_serve.json --warn-only \
    --fail-on-missing

# Fault-injection smoke: seeded transient APU faults against the showcase.
# Must exit 0 (the fallback chain absorbs the faults) and the resilience
# report must show at least one recovered run.
sched_out=$(cargo run --release -q -p tvmnp-bench --bin sched -- \
    --inject-fault apu:dispatch:transient --fault-seed 7)
echo "$sched_out" | grep -q "recovered runs" || {
    echo "fault-injection smoke: no resilience report in sched output" >&2
    exit 1
}
recovered=$(echo "$sched_out" | sed -n 's/.*recovered runs: *\([0-9]*\).*/\1/p')
if [ -z "$recovered" ] || [ "$recovered" -lt 1 ]; then
    echo "fault-injection smoke: expected >=1 recovered run, got '${recovered:-none}'" >&2
    exit 1
fi
echo "fault-injection smoke: $recovered run(s) recovered under seeded faults"

# Observability smoke: serve one observed run under seeded transient APU
# faults, streaming live stats and arming the flight recorder, then
# schema-check both artifacts. Hard gate: the stats JSONL must be valid
# (monotone seq, monotone quantiles, final flush) and the flight dumps
# must validate and carry the injected dispatch faults plus the
# SLO-breach trigger. The 50 ms SLO sits between the serve clip's
# deterministic p95 (~50.5 ms) and max (~53.5 ms) simulated frame
# latencies, so only the tail frames dump. --runs 1 so per-frame trace
# ids stay unique. (Fallback transitions inside a dump window are
# covered by the exhaustion path in tests/observe_flow.rs.)
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
cargo run --release -q -p tvmnp-bench --bin bench -- \
    --workload serve --runs 1 --bench-out "$obs_dir/serve-observed.json" \
    --inject-fault apu:dispatch:transient --fault-seed 7 \
    --stats-out "$obs_dir/stats.jsonl" --flight-out "$obs_dir/flight" \
    --slo-ms 50
cargo run --release -q -p tvmnp-bench --bin obs_check -- \
    --stats "$obs_dir/stats.jsonl" \
    --flight-dir "$obs_dir/flight" \
    --expect-kind fault.injected \
    --expect-kind slo.breach

# Observability overhead gate: serve medians with the plane enabled vs
# disabled. Warn-only — simulated metrics are structurally immune to
# observation (tracing never charges simulated time), so a WARN here
# points at a bookkeeping bug rather than a perf regression, and
# wall-clock noise on a shared runner must not turn CI red.
cargo run --release -q -p tvmnp-bench --bin bench -- \
    --workload serve --runs 2 --bench-out "$obs_dir/serve-plain.json"
cargo run --release -q -p tvmnp-bench --bin bench -- \
    --workload serve --runs 2 --bench-out "$obs_dir/serve-traced.json" \
    --stats-out "$obs_dir/stats-overhead.jsonl"
cargo run --release -q -p tvmnp-bench --bin obs_check -- \
    --compare "$obs_dir/serve-plain.json" "$obs_dir/serve-traced.json" \
    --metric serve.concurrent.makespan.ms --warn-at 0.05

# Differential-profiling smoke: record a clean fig4 measured profile,
# re-run with a 2x injected slowdown on mac-heavy work, and diff against
# the clean store. Hard gate twice over: both profile files must pass the
# schema validator, and the diff's top attribution cell must name the
# injected kind — if the attribution pipeline ever stops pinning the
# regression on mac/* cells, CI fails here before a human reads a table.
cargo run --release -q -p tvmnp-bench --bin bench -- \
    --workload fig4 --runs 1 --bench-out "$obs_dir/fig4-clean.json" \
    --profile-store "$obs_dir/prof-base"
diff_out=$(cargo run --release -q -p tvmnp-bench --bin bench -- \
    --workload fig4 --runs 1 --bench-out "$obs_dir/fig4-slow.json" \
    --inject-slowdown mac=2 \
    --profile-store "$obs_dir/prof-slow" \
    --profile-diff "$obs_dir/prof-base")
echo "$diff_out"
echo "$diff_out" | grep -q "^top regression cell: mac/" || {
    echo "profile-diff smoke: injected mac slowdown not attributed to a mac/* cell" >&2
    exit 1
}
cargo run --release -q -p tvmnp-bench --bin obs_check -- \
    --profile "$obs_dir"/prof-base/profile-*.json \
    --profile "$obs_dir"/prof-slow/profile-*.json

# Conformance smoke: fixed-seed differential run across the seven target
# permutations. Hard gate — any divergence from the interpreter or any
# invariant violation (quant params, partition shape, memory plan) fails
# the build. The 500-case property suite runs under `cargo test` above;
# this step additionally proves the CLI entry point works end to end.
cargo run --release -q -p tvmnp-bench --bin conformance -- --cases 200 --seed 1
