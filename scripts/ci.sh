#!/usr/bin/env bash
# Tier-1 CI gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy -- -D warnings

# Bench smoke: one workload against the checked-in baseline. Warn-only —
# the hard gate is scripts/bench_baseline.sh + a reviewed diff; this step
# only proves the harness runs and surfaces drift in the CI log.
cargo run --release -q -p tvmnp-bench --bin bench -- \
    --workload fig6 --runs 2 --check-against BENCH_fig6.json --warn-only
