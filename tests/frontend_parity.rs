//! Cross-frontend parity: the same network authored in four different
//! frameworks (with the same weights, stored in each framework's own
//! conventions) must import to semantically identical Relay modules —
//! the "variety of machine learning frameworks" claim of the abstract,
//! made executable.
//!
//! Network: conv 3x3 (4 filters + bias, valid) → relu → maxpool 2x2 →
//! flatten → dense(5 + bias) → softmax, on 1×1×28×28 input.

use std::collections::HashMap;
use tvm_neuropilot::frontends::keras::{from_keras, Activation, KerasLayer, KerasModel};
use tvm_neuropilot::frontends::mxnet::{from_mxnet, MxnetNode, MxnetSymbol};
use tvm_neuropilot::frontends::onnx::{from_onnx, AttrValue, OnnxModel, OnnxNode, ValueInfo};
use tvm_neuropilot::frontends::pytorch::{from_pytorch, TorchNode, TracedModule};
use tvm_neuropilot::prelude::*;
use tvm_neuropilot::tensor::kernels::transpose;
use tvm_neuropilot::tensor::rng::TensorRng;

struct Weights {
    conv_w_oihw: Tensor, // [4, 1, 3, 3]
    conv_b: Tensor,      // [4]
    fc_w: Tensor,        // [5, 4*13*13] (units, in)
    fc_b: Tensor,        // [5]
}

fn weights(seed: u64) -> Weights {
    let mut rng = TensorRng::new(seed);
    Weights {
        conv_w_oihw: rng.uniform_f32([4, 1, 3, 3], -0.4, 0.4),
        conv_b: rng.uniform_f32([4], -0.1, 0.1),
        fc_w: rng.uniform_f32([5, 4 * 13 * 13], -0.05, 0.05),
        fc_b: rng.uniform_f32([5], -0.1, 0.1),
    }
}

fn via_pytorch(w: &Weights) -> Module {
    let mut state = HashMap::new();
    state.insert("conv.weight".to_string(), w.conv_w_oihw.clone());
    state.insert("conv.bias".to_string(), w.conv_b.clone());
    state.insert("fc.weight".to_string(), w.fc_w.clone());
    state.insert("fc.bias".to_string(), w.fc_b.clone());
    let traced = TracedModule {
        nodes: vec![
            TorchNode::new("aten::conv2d", &["%x", "conv.weight", "conv.bias"], "%1"),
            TorchNode::new("aten::relu", &["%1"], "%2"),
            TorchNode::new("aten::max_pool2d", &["%2"], "%3").with_ints("kernel_size", vec![2, 2]),
            TorchNode::new("aten::flatten", &["%3"], "%4"),
            TorchNode::new("aten::linear", &["%4", "fc.weight", "fc.bias"], "%5"),
            TorchNode::new("aten::softmax", &["%5"], "%out"),
        ],
        inputs: vec!["%x".into()],
        output: "%out".into(),
        state_dict: state,
    };
    from_pytorch(&traced, &[("%x".to_string(), vec![1, 1, 28, 28])]).unwrap()
}

fn via_keras(w: &Weights) -> Module {
    // Keras stores conv kernels HWIO and dense kernels [in, units].
    let kernel_hwio = transpose(&w.conv_w_oihw, &[2, 3, 1, 0]).unwrap();
    let fc_in_units = transpose(&w.fc_w, &[1, 0]).unwrap();
    let model = KerasModel {
        input_shape: (28, 28, 1),
        layers: vec![
            KerasLayer::Conv2D {
                filters: 4,
                kernel_size: (3, 3),
                activation: Activation::Relu,
                same_padding: false,
                kernel: kernel_hwio,
                bias: w.conv_b.clone(),
            },
            KerasLayer::MaxPooling2D { pool_size: (2, 2) },
            KerasLayer::Flatten,
            KerasLayer::Dense {
                units: 5,
                activation: Activation::Softmax,
                kernel: fc_in_units,
                bias: w.fc_b.clone(),
            },
        ],
    };
    from_keras(&model).unwrap()
}

fn via_onnx(w: &Weights) -> Module {
    let mut initializers = HashMap::new();
    initializers.insert("W".to_string(), w.conv_w_oihw.clone());
    initializers.insert("B".to_string(), w.conv_b.clone());
    initializers.insert("FC".to_string(), w.fc_w.clone());
    initializers.insert("FCB".to_string(), w.fc_b.clone());
    let model = OnnxModel {
        nodes: vec![
            OnnxNode::new("Conv", &["x", "W", "B"], &["c"])
                .with_attr("pads", AttrValue::Ints(vec![0, 0, 0, 0])),
            OnnxNode::new("Relu", &["c"], &["r"]),
            OnnxNode::new("MaxPool", &["r"], &["p"])
                .with_attr("kernel_shape", AttrValue::Ints(vec![2, 2])),
            OnnxNode::new("Flatten", &["p"], &["f"]),
            OnnxNode::new("Gemm", &["f", "FC", "FCB"], &["l"]),
            OnnxNode::new("Softmax", &["l"], &["s"]),
        ],
        inputs: vec![ValueInfo {
            name: "x".into(),
            shape: vec![1, 1, 28, 28],
        }],
        outputs: vec!["s".into()],
        initializers,
    };
    from_onnx(&model).unwrap()
}

fn via_mxnet(w: &Weights) -> Module {
    let mut params = HashMap::new();
    params.insert("conv_weight".to_string(), w.conv_w_oihw.clone());
    params.insert("conv_bias".to_string(), w.conv_b.clone());
    params.insert("fc_weight".to_string(), w.fc_w.clone());
    params.insert("fc_bias".to_string(), w.fc_b.clone());
    let symbol = MxnetSymbol {
        nodes: vec![
            MxnetNode::new("null", "data", vec![]),
            MxnetNode::new("null", "conv_weight", vec![]),
            MxnetNode::new("null", "conv_bias", vec![]),
            MxnetNode::new("Convolution", "conv", vec![[0, 0], [1, 0], [2, 0]])
                .with_attr("kernel", "(3, 3)"),
            MxnetNode::new("Activation", "relu", vec![[3, 0]]).with_attr("act_type", "relu"),
            MxnetNode::new("Pooling", "pool", vec![[4, 0]])
                .with_attr("kernel", "(2, 2)")
                .with_attr("pool_type", "max"),
            MxnetNode::new("null", "fc_weight", vec![]),
            MxnetNode::new("null", "fc_bias", vec![]),
            MxnetNode::new("FullyConnected", "fc", vec![[5, 0], [6, 0], [7, 0]]),
            MxnetNode::new("softmax", "probs", vec![[8, 0]]),
        ],
        heads: vec![[9, 0]],
    };
    from_mxnet(&symbol, &params, &[1, 1, 28, 28]).unwrap()
}

/// Run a module on the shared input, whatever its input name is.
fn run(m: &Module, input: &Tensor) -> Tensor {
    let name = match &m.main().params[0].kind {
        tvm_neuropilot::relay::ExprKind::Var(v) => v.name.clone(),
        _ => panic!("param is a var"),
    };
    let mut ins = HashMap::new();
    ins.insert(name, input.clone());
    run_module(m, &ins).unwrap()
}

#[test]
fn four_frontends_agree_numerically() {
    let w = weights(12345);
    let mut rng = TensorRng::new(999);
    let input = rng.uniform_f32([1, 1, 28, 28], -1.0, 1.0);

    let reference = run(&via_pytorch(&w), &input);
    assert_eq!(reference.shape().dims(), &[1, 5]);

    for (name, module) in [
        ("keras", via_keras(&w)),
        ("onnx", via_onnx(&w)),
        ("mxnet", via_mxnet(&w)),
    ] {
        let out = run(&module, &input);
        assert!(
            reference.approx_eq(&out, 1e-5),
            "{name} diverged from pytorch: max diff {}",
            reference.max_abs_diff(&out)
        );
        assert_eq!(reference.argmax(), out.argmax(), "{name} top-1 differs");
    }
}

#[test]
fn four_frontends_partition_identically() {
    // Structural parity survives the BYOC flow: all four importers yield
    // a fully NeuroPilot-supported module that partitions into exactly
    // one subgraph.
    let w = weights(54321);
    for (name, module) in [
        ("pytorch", via_pytorch(&w)),
        ("keras", via_keras(&w)),
        ("onnx", via_onnx(&w)),
        ("mxnet", via_mxnet(&w)),
    ] {
        let (_, report) = tvm_neuropilot::nir::partition_for_nir(&module).unwrap();
        assert_eq!(report.num_subgraphs, 1, "{name}");
        assert_eq!(report.host_calls, 0, "{name}: everything offloads");
    }
}

#[test]
fn all_permutations_agree_across_frontends() {
    let w = weights(777);
    let mut rng = TensorRng::new(778);
    let input = rng.uniform_f32([1, 1, 28, 28], -1.0, 1.0);
    let cost = CostModel::default();
    let reference = run(&via_pytorch(&w), &input);

    for module in [via_keras(&w), via_onnx(&w), via_mxnet(&w)] {
        for p in [
            Permutation::TvmOnly,
            Permutation::ByocCpuApu,
            Permutation::NpApu,
        ] {
            let mut compiled = relay_build(&module, p.mode(), cost.clone()).unwrap();
            let name = match &module.main().params[0].kind {
                tvm_neuropilot::relay::ExprKind::Var(v) => v.name.clone(),
                _ => unreachable!(),
            };
            let mut ins = HashMap::new();
            ins.insert(name, input.clone());
            let (outs, _) = compiled.run(&ins).unwrap();
            assert!(reference.approx_eq(&outs[0], 1e-5), "{p} diverged");
        }
    }
}
