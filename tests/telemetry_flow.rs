//! End-to-end observability: push one showcase model through the full
//! BYOC flow with telemetry enabled and check that the collected spans
//! tell the whole story — compile, partition, codegen, and an execute
//! phase whose per-node profile accounts for ≥95% of the measured run.
//!
//! Kept as a single test function: the telemetry collector is
//! process-global, so concurrent tests in this binary would interleave
//! their spans.

use std::collections::HashSet;
use tvm_neuropilot::models::emotion;
use tvm_neuropilot::prelude::*;
use tvm_neuropilot::telemetry;

#[test]
fn byoc_flow_is_fully_observable() {
    let model = emotion::emotion_model(41);
    let cost = CostModel::default();

    telemetry::enable();
    telemetry::reset();
    let mut compiled =
        relay_build(&model.module, TargetMode::Byoc(TargetPolicy::CpuApu), cost).unwrap();
    let (outputs, last_run_us) = compiled.run(&model.sample_inputs(2)).unwrap();
    telemetry::disable();
    let snap = telemetry::snapshot();

    assert_eq!(outputs[0].shape().dims(), &[1, 7]);

    // Every phase of the flow left spans behind.
    let names: HashSet<&str> = snap.events.iter().map(|e| e.name.as_str()).collect();
    for phase in [
        "relay.pass",
        "byoc.build",
        "byoc.partition",
        "byoc.codegen",
        "neuropilot.compile",
        "executor.run",
        "executor.node",
    ] {
        assert!(names.contains(phase), "missing {phase} span in {names:?}");
    }

    // The per-node simulated spans account for (at least) 95% of the
    // executor's reported run time — nothing is unattributed.
    let node_us: f64 = snap
        .events
        .iter()
        .filter(|e| e.name == "executor.node")
        .map(|e| e.dur_us)
        .sum();
    assert!(
        node_us >= 0.95 * last_run_us,
        "per-node spans cover {node_us:.2} of {last_run_us:.2} us"
    );
    assert!(
        node_us <= last_run_us * 1.0001,
        "profile cannot exceed the run"
    );

    // Metrics rode along with the spans.
    assert!(
        snap.metrics
            .iter()
            .any(|(k, _)| k.name == "executor.node_us"),
        "per-node histogram missing"
    );

    // Both exporters render from the same snapshot.
    let table = telemetry::profile_table(&snap, &Default::default());
    assert!(table.contains("% of run") && table.contains("apu"));
    let trace = telemetry::chrome_trace(&snap);
    let events = trace["traceEvents"].as_array().expect("trace array");
    assert!(events.len() > snap.events.len(), "trace = spans + metadata");
}
