//! Resilient execution through the public API: seeded faults against the
//! paper's showcase models, exercising the fallback chain end to end.
//!
//! Pins down the three contract points of the resilience subsystem:
//!
//! 1. a degraded run is **bit-identical** to a fault-free run of the
//!    permutation it lands on (host kernels everywhere);
//! 2. an exhausted chain surfaces a **typed** error carrying the full
//!    per-permutation cause chain, not a panic or a stringly error;
//! 3. the same [`FaultPlan`] seed reproduces the same outcome, byte for
//!    byte.

use tvm_neuropilot::models::emotion;
use tvm_neuropilot::prelude::*;

fn policy_with_breaker(threshold: u64) -> ResiliencePolicy {
    ResiliencePolicy {
        breaker_threshold: threshold,
        ..ResiliencePolicy::default()
    }
}

#[test]
fn apu_loss_degrades_bit_identical_to_fault_free_cpu_run() {
    let model = emotion::emotion_model(41);
    let inputs = model.sample_inputs(9);

    // Fault-free reference on the permutation the chain falls back to.
    let mut reference = relay_build(
        &model.module,
        Permutation::ByocCpu.mode(),
        CostModel::default(),
    )
    .expect("reference build");
    let (ref_outs, _) = reference.run(&inputs).expect("reference run");

    // Kill the APU; one loss trips its breaker so every APU-dependent
    // permutation is skipped.
    let mut session = ResilientSession::new(
        model.module.clone(),
        CostModel::default(),
        FaultPlan::seeded(7).device_lost(DeviceKind::Apu),
        policy_with_breaker(1),
    );
    let out = session
        .run(&model.name, Permutation::NpApu, &inputs)
        .expect("chain must recover on the CPU");

    assert!(out.degraded(), "APU loss must force a fallback");
    assert_eq!(out.permutation, Permutation::ByocCpu);
    assert_eq!(out.outputs.len(), ref_outs.len());
    for (got, want) in out.outputs.iter().zip(&ref_outs) {
        assert!(
            got.bit_eq(want),
            "degraded outputs must be bit-identical to the fault-free CPU run"
        );
    }
    assert!(
        out.fallbacks.iter().any(|c| c.detail.contains("apu")),
        "cause chain must name the lost device: {:?}",
        out.fallbacks
    );
}

#[test]
fn exhausted_chain_yields_typed_error_with_full_cause_chain() {
    let model = emotion::emotion_model(41);
    let inputs = model.sample_inputs(9);

    // Every device the chain can reach is gone.
    let mut session = ResilientSession::new(
        model.module.clone(),
        CostModel::default(),
        FaultPlan::seeded(3)
            .device_lost(DeviceKind::Apu)
            .device_lost(DeviceKind::Cpu),
        ResiliencePolicy::default(),
    );
    let err = session
        .run(&model.name, Permutation::NpApu, &inputs)
        .expect_err("no device left to serve the run");

    let ResilienceError::Exhausted {
        model: label,
        causes,
    } = &err
    else {
        panic!("expected ResilienceError::Exhausted, got {err}");
    };
    assert_eq!(label, &model.name);
    assert_eq!(
        causes.len(),
        Permutation::FALLBACK_CHAIN.len(),
        "one cause per abandoned permutation"
    );
    for (cause, perm) in causes.iter().zip(Permutation::FALLBACK_CHAIN) {
        assert_eq!(cause.permutation, perm);
        assert!(!cause.detail.is_empty());
    }
    assert!(causes.iter().any(|c| c.detail.contains("apu")));
    assert!(causes.iter().any(|c| c.detail.contains("cpu")));
    // The rendered error narrates the whole chain.
    let msg = err.to_string();
    assert!(msg.contains("fallback chain exhausted"), "{msg}");
    assert!(msg.contains("apu") && msg.contains("cpu"), "{msg}");
}

#[test]
fn same_fault_seed_reproduces_the_same_outcome() {
    let model = emotion::emotion_model(41);
    let inputs = model.sample_inputs(9);
    let run = |seed: u64| {
        let mut session = ResilientSession::new(
            model.module.clone(),
            CostModel::default(),
            FaultPlan::seeded(seed).transient_dispatch(DeviceKind::Apu, 3),
            ResiliencePolicy::default(),
        );
        let out = session
            .run(&model.name, Permutation::NpApu, &inputs)
            .expect("transient faults must recover via retry");
        let faults = session.injector().faults_injected();
        (out, faults)
    };
    let (a, fa) = run(7);
    let (b, fb) = run(7);
    assert_eq!(a.permutation, b.permutation);
    assert_eq!(a.time_us, b.time_us, "retry backoff is simulated time");
    assert_eq!(a.fallbacks.len(), b.fallbacks.len());
    assert_eq!(fa, fb, "same seed must inject the same faults");
    assert!(fa >= 1, "seeded transient plan must actually fire");
    for (x, y) in a.outputs.iter().zip(&b.outputs) {
        assert!(x.bit_eq(y));
    }
}
