//! Scheduling integration (paper §5): computation scheduling over real
//! measurements and the Fig. 5 pipeline built from the real application.

use tvm_neuropilot::models::{anti_spoofing, emotion, object_detection};
use tvm_neuropilot::prelude::*;
use tvm_neuropilot::scheduler::computation::{best_assignment, ModelProfile};
use tvm_neuropilot::scheduler::pipeline::auto_schedule;
use tvm_neuropilot::scheduler::{simulate_pipelined as pipe, simulate_sequential as seq};

fn profiles() -> Vec<ModelProfile> {
    let cost = CostModel::default();
    let models = [
        anti_spoofing::anti_spoofing_model(80),
        object_detection::mobilenet_ssd_model(81),
        emotion::emotion_model(82),
    ];
    models
        .iter()
        .map(|m| ModelProfile {
            name: m.name.clone(),
            measurements: measure_all(&m.module, &cost).unwrap(),
        })
        .collect()
}

/// §5.1: each showcase model gets a best target, and the paper's
/// qualitative claims hold — NeuroPilot-backed beats TVM-only everywhere,
/// and the emotion model's best target uses the APU.
#[test]
fn computation_scheduling_assigns_fastest_targets() {
    let ps = profiles();
    let assignment = best_assignment(&ps);
    assert_eq!(assignment.len(), 3, "every model gets a target");
    for p in &ps {
        let (best, t_best) = p.best().unwrap();
        assert_ne!(
            best,
            Permutation::TvmOnly,
            "{}: TVM-only can never win",
            p.name
        );
        let t_tvm = p.time_ms(Permutation::TvmOnly).unwrap();
        assert!(t_best < t_tvm);
    }
    let emotion_best = assignment["emotion-detection"];
    assert!(
        matches!(emotion_best, Permutation::ByocApu | Permutation::NpApu),
        "emotion should live on the APU, got {emotion_best}"
    );
}

/// Fig. 4's side observation: anti-spoofing is the slowest of the three
/// showcase models on its best target (many subgraphs).
#[test]
fn anti_spoofing_slowest_on_best_targets() {
    let ps = profiles();
    let best_time = |name: &str| {
        ps.iter()
            .find(|p| p.name == name)
            .unwrap()
            .best()
            .unwrap()
            .1
    };
    let spoof = best_time("anti-spoofing");
    assert!(spoof > best_time("mobilenet-ssd-quant"));
    assert!(spoof > best_time("emotion-detection"));
}

/// Fig. 5 reproduced from live measurements: the paper's prototype
/// assignment pipelines better than both the sequential baseline and the
/// greedy everything-on-CPU+APU assignment.
#[test]
fn pipeline_prototype_beats_sequential_and_greedy() {
    let cost = CostModel::default();
    let frames = 8;

    let proto = Showcase::new(900, ShowcaseAssignment::paper_prototype(), &cost);
    let proto_stages = proto.stage_profile(901);
    let proto_pipe = pipe(&proto_stages, frames);
    let proto_seq = seq(&proto_stages, frames);
    assert!(proto_pipe.makespan_us < proto_seq.makespan_us);
    assert!(proto_pipe.timeline.check_exclusive().is_none());

    let greedy = Showcase::new(900, ShowcaseAssignment::greedy(), &cost);
    let greedy_stages = greedy.stage_profile(901);
    let greedy_pipe = pipe(&greedy_stages, frames);
    // The greedy assignment blocks overlap (obj-det holds CPU+APU), so
    // the prototype pipeline finishes sooner even though greedy's
    // obj-det is faster in isolation.
    assert!(
        proto_pipe.makespan_us < greedy_pipe.makespan_us,
        "prototype {:.1} ms vs greedy {:.1} ms",
        proto_pipe.makespan_us / 1000.0,
        greedy_pipe.makespan_us / 1000.0
    );
}

/// The automatic scheduler (paper future work) never does worse than the
/// hand-built prototype when given both assignments as options.
#[test]
fn auto_scheduler_matches_or_beats_prototype() {
    let cost = CostModel::default();
    let proto = Showcase::new(910, ShowcaseAssignment::paper_prototype(), &cost);
    let greedy = Showcase::new(910, ShowcaseAssignment::greedy(), &cost);
    let ps = proto.stage_profile(911);
    let gs = greedy.stage_profile(911);
    let options: Vec<Vec<_>> = ps
        .iter()
        .zip(&gs)
        .map(|(a, b)| vec![a.clone(), b.clone()])
        .collect();
    let frames = 8;
    let (_, auto) = auto_schedule(&options, frames).unwrap();
    let manual = pipe(&ps, frames);
    assert!(auto.makespan_us <= manual.makespan_us + 1e-6);
}

/// Pipelined wall-clock benefit is real, not just simulated: the threaded
/// executor finishes the video faster than sequential processing when
/// stages hold disjoint devices.
#[test]
fn threaded_pipeline_wall_clock_benefit() {
    let cost = CostModel::default();
    let showcase = Showcase::new(920, ShowcaseAssignment::paper_prototype(), &cost);
    let mut video = SyntheticVideo::new(921, 64, 64);
    let frames = video.frames(10);

    let t0 = std::time::Instant::now();
    let s = showcase.process_video(&frames);
    let sequential = t0.elapsed();

    let t1 = std::time::Instant::now();
    let p = showcase.process_video_pipelined(frames);
    let pipelined = t1.elapsed();

    assert_eq!(s.len(), p.len());
    // Wall clock is noisy in CI; require only that pipelining is not
    // catastrophically slower (the semantic equality is the hard check).
    assert!(pipelined < sequential * 3);
}
