//! The BYOC mechanics end to end: partition → external codegen → runtime
//! linkage → artifact deployment (paper §3.1, §4.5, Figs. 2/3).

use tvm_neuropilot::byoc::build::{partition_for_nir, relay_build_with_artifact};
use tvm_neuropilot::byoc::NeuronModule;
use tvm_neuropilot::models::{anti_spoofing, emotion, zoo};
use tvm_neuropilot::prelude::*;
use tvm_neuropilot::runtime::artifact::LoaderRegistry;
use tvm_neuropilot::runtime::AndroidDevice;

/// Partitioned modules carry the `Compiler`/`global_symbol` attributes TVM
/// BYOC uses, and re-type-check.
#[test]
fn partitioned_module_shape() {
    let model = emotion::emotion_model(31);
    let (partitioned, report) = partition_for_nir(&model.module).unwrap();
    assert!(report.num_subgraphs >= 1);
    for name in partitioned.external_functions() {
        let f = &partitioned.functions[name];
        assert_eq!(f.compiler(), Some("neuropilot"));
        assert_eq!(f.attrs.get("global_symbol").map(String::as_str), Some(name));
        assert_eq!(f.attrs.get("Primitive").map(String::as_str), Some("1"));
    }
    assert!(tvm_neuropilot::relay::infer_types(&partitioned).is_ok());
}

/// The anti-spoofing model shatters into many subgraphs while the fully
/// supported emotion model collapses into one — the §5.1 contrast.
#[test]
fn subgraph_counts_tell_the_fig4_story() {
    let spoof = anti_spoofing::anti_spoofing_model(32);
    let emo = emotion::emotion_model(33);
    let (_, spoof_report) = partition_for_nir(&spoof.module).unwrap();
    let (_, emo_report) = partition_for_nir(&emo.module).unwrap();
    assert_eq!(
        emo_report.num_subgraphs, 1,
        "emotion model is fully supported"
    );
    assert!(
        spoof_report.num_subgraphs >= 3 * emo_report.num_subgraphs,
        "anti-spoofing must fragment ({} vs {})",
        spoof_report.num_subgraphs,
        emo_report.num_subgraphs
    );
    assert!(spoof_report.host_calls > 0, "batch norms stay on TVM");
}

/// More subgraphs ⇒ more dispatch/transfer overhead: measured BYOC time
/// per MAC is worse for the fragmented model.
#[test]
fn fragmentation_costs_time() {
    let cost = CostModel::default();
    let spoof = anti_spoofing::anti_spoofing_model(34);
    let frag = measure_one(&spoof.module, Permutation::ByocCpuApu, &cost).unwrap();
    assert!(frag.subgraphs >= 3);
    // Against a single-subgraph model of comparable op count.
    let emo = emotion::emotion_model(36);
    let solid = measure_one(&emo.module, Permutation::ByocCpuApu, &cost).unwrap();
    assert_eq!(solid.subgraphs, 1);
    assert!(
        frag.time_ms.unwrap() > solid.time_ms.unwrap(),
        "fragmented {:?} vs solid {:?}",
        frag.time_ms,
        solid.time_ms
    );
}

/// Full §4.5 deployment: export on the server, load on a runtime-only
/// simulated phone, get bit-identical outputs.
#[test]
fn artifact_deploys_to_runtime_only_device() {
    let cost = CostModel::default();
    for model in [zoo::mobilenet_v2(40), zoo::inception_v3_quant(41)] {
        let (mut compiled, artifact) = relay_build_with_artifact(
            &model.module,
            TargetMode::Byoc(TargetPolicy::ApuPrefer),
            cost.clone(),
        )
        .unwrap();
        let artifact = artifact.unwrap();
        let inputs = model.sample_inputs(42);
        let (reference, _) = compiled.run(&inputs).unwrap();

        // Serialize through disk, as export_library does.
        let dir = std::env::temp_dir().join("tvmnp_byoc_flow_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}.json", model.name.replace(' ', "_")));
        artifact.export_library(&path).unwrap();
        let loaded = tvm_neuropilot::runtime::Artifact::load_library(&path).unwrap();

        let mut loaders = LoaderRegistry::new();
        loaders.register("neuropilot", NeuronModule::loader(cost.clone()));
        let phone = AndroidDevice::new("test-phone", loaders, cost.clone());
        let mut ex = phone.load(&loaded).unwrap();
        ex.set_input(&model.input_name, inputs[&model.input_name].clone())
            .unwrap();
        ex.run().unwrap();
        assert!(
            ex.get_output(0).unwrap().bit_eq(&reference[0]),
            "{}: device output diverged",
            model.name
        );
    }
}

/// NP-only builds fail on exactly the models whose bars are missing, and
/// the error names the offending operator.
#[test]
fn missing_bars_have_named_causes() {
    let cases = [
        (
            anti_spoofing::anti_spoofing_model(50).module,
            "nn.batch_norm",
        ),
        (zoo::nasnet(51).module, "mean"),
        (zoo::densenet(52).module, "nn.batch_norm"),
    ];
    for (module, expected_op) in cases {
        match relay_build(
            &module,
            TargetMode::NeuroPilotOnly(TargetPolicy::CpuOnly),
            CostModel::default(),
        ) {
            Err(tvm_neuropilot::byoc::build::BuildError::Unsupported(op)) => {
                assert_eq!(op, expected_op)
            }
            other => panic!(
                "expected Unsupported({expected_op}), got ok={}",
                other.is_ok()
            ),
        }
    }
}

/// The memory planner produces alias-free storage for every showcase model.
#[test]
fn storage_planning_is_sound_on_real_models() {
    use tvm_neuropilot::runtime::{plan_memory, ExecutorGraph};
    for model in [
        emotion::emotion_model(60),
        zoo::mobilenet_v2(61),
        zoo::densenet(62),
    ] {
        let (partitioned, _) = partition_for_nir(&model.module).unwrap();
        let graph = ExecutorGraph::build(&partitioned).unwrap();
        let plan = plan_memory(&graph);
        assert!(plan.peak_bytes > 0);
        assert!(
            plan.check_no_alias(&graph).is_none(),
            "{}: aliasing storage plan",
            model.name
        );
    }
}
