//! End-to-end concurrent serving: the session pool must produce
//! bit-identical outputs at any concurrency level — with and without
//! injected transient faults — and a second pool stood up on the same
//! artifact cache must reuse every compiled artifact without a single
//! recompilation span.
//!
//! The telemetry collector is process-global, so the tests in this
//! binary are serialized through `TESTS`: a pool build in one test
//! would otherwise leak codegen spans into another test's snapshot.

use std::sync::{Arc, Mutex};
use tvm_neuropilot::prelude::*;
use tvm_neuropilot::telemetry;
use tvm_neuropilot::vision::ShowcaseFaults;

static TESTS: Mutex<()> = Mutex::new(());

fn clip(frames: usize) -> Vec<tvm_neuropilot::vision::Frame> {
    SyntheticVideo::new(7, 64, 64).frames(frames)
}

fn pool(cache: &Arc<ArtifactCache>) -> SessionPool {
    SessionPool::new(
        900,
        &serving_rotation(),
        &CostModel::default(),
        cache.clone(),
    )
}

/// 256 frames at concurrency 8 against the same pool that served them
/// sequentially: every field of every result must match, in input
/// order. The pool's sessions share one `ResourceLocks` table, which
/// asserts on lock-order inversions — eight workers hammering the
/// cpu/gpu/apu locks exercise that invariant on every frame.
#[test]
fn serves_256_frames_concurrently_bit_identical_to_sequential() {
    let _guard = TESTS.lock().unwrap();
    let cache = Arc::new(ArtifactCache::new(usize::MAX));
    let pool = pool(&cache);
    let frames = clip(256);
    let sequential = pool.serve(&frames, 1);
    let concurrent = pool.serve(&frames, 8);
    assert_eq!(sequential.len(), 256);
    assert_eq!(sequential, concurrent, "concurrency changed the outputs");
    for (i, result) in concurrent.iter().enumerate() {
        assert_eq!(result.frame_index, frames[i].index, "order not preserved");
    }
}

/// The same identity under a transient-dispatch fault plan: faults are
/// retried inside the dispatch, so the *numeric* outputs still match a
/// fault-free sequential run frame for frame. Timing is excluded — the
/// retry backoff lands on whichever dispatches consumed a fault, and
/// that depends on schedule order.
#[test]
fn transient_dispatch_faults_do_not_change_served_outputs() {
    let _guard = TESTS.lock().unwrap();
    let frames = clip(32);
    let clean = pool(&Arc::new(ArtifactCache::new(usize::MAX))).serve(&frames, 1);

    let plan = FaultPlan::seeded(11).transient_dispatch(DeviceKind::Apu, 1);
    let faults = ShowcaseFaults {
        injector: Arc::new(FaultInjector::new(plan)),
        retry: RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        },
    };
    let faulty = SessionPool::new_with_faults(
        900,
        &serving_rotation(),
        &CostModel::default(),
        Arc::new(ArtifactCache::new(usize::MAX)),
        faults,
    );
    let served = faulty.serve(&frames, 8);

    assert_eq!(served.len(), clean.len());
    for (a, b) in served.iter().zip(&clean) {
        assert_eq!(a.frame_index, b.frame_index);
        assert_eq!(a.objects, b.objects, "frame {}", a.frame_index);
        assert_eq!(a.faces, b.faces, "frame {}", a.frame_index);
        assert_eq!(a.dropped, b.dropped, "frame {}", a.frame_index);
    }
}

/// Standing up a second pool on a warm cache is pure reuse: zero
/// codegen/compile spans, every build a cache hit.
#[test]
fn second_pool_build_is_all_cache_hits_with_zero_codegen_spans() {
    let _guard = TESTS.lock().unwrap();
    let cache = Arc::new(ArtifactCache::new(usize::MAX));
    let first = pool(&cache);
    let misses_after_first = cache.stats().misses;
    assert!(misses_after_first > 0, "first pool must compile something");

    telemetry::enable();
    telemetry::reset();
    let second = pool(&cache);
    telemetry::disable();
    let snap = telemetry::snapshot();

    for span in [
        "byoc.build",
        "byoc.partition",
        "byoc.codegen",
        "neuropilot.compile",
        "neuropilot.convert",
    ] {
        assert_eq!(
            snap.spans_named(span).count(),
            0,
            "second pool re-ran {span}"
        );
    }
    let stats = cache.stats();
    assert_eq!(stats.misses, misses_after_first, "second pool recompiled");
    assert!(
        stats.hits >= 6,
        "expected 2 sessions x 3 models of hits, got {stats:?}"
    );

    // The warm pool serves exactly like the cold one.
    let frames = clip(4);
    assert_eq!(first.serve(&frames, 1), second.serve(&frames, 4));
}
