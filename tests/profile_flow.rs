//! End-to-end measured-profile flow: telemetry detail mode feeds the
//! profile store, a differential diff pins an injected slowdown on the
//! responsible (op kind, device) cells, calibration fits the analytic
//! cost model to the measurements, and the on-disk artifact is
//! byte-deterministic.
//!
//! The telemetry collector is process-global, so every test that touches
//! it serializes through `TESTS`.

use std::sync::Mutex;
use tvm_neuropilot::models::{anti_spoofing, emotion, object_detection, Model};
use tvm_neuropilot::prelude::*;
use tvm_neuropilot::profile::{DiffOptions, DRIFT_THRESHOLD};
use tvm_neuropilot::telemetry;
use tvmnp_hwsim::WorkKind;

static TESTS: Mutex<()> = Mutex::new(());

fn showcase_trio() -> [Model; 3] {
    [
        anti_spoofing::anti_spoofing_model(101),
        object_detection::mobilenet_ssd_model(102),
        emotion::emotion_model(103),
    ]
}

/// Run the showcase trio through the BYOC CPU+APU flow with telemetry
/// detail mode on and ingest the executor spans into a fresh profile.
fn collect(cost: &CostModel) -> Profile {
    telemetry::enable();
    telemetry::reset();
    telemetry::set_detail(true);
    for model in &showcase_trio() {
        let mut compiled = relay_build(
            &model.module,
            TargetMode::Byoc(TargetPolicy::CpuApu),
            cost.clone(),
        )
        .expect("build");
        compiled.run(&model.sample_inputs(7)).expect("run");
    }
    telemetry::set_detail(false);
    telemetry::disable();
    let snap = telemetry::snapshot();
    let mut profile = Profile::new(ProfileKey {
        workload: "profile-flow".to_string(),
        permutation: "byoc-cpu-apu".to_string(),
        quant: "f32".to_string(),
        soc: "dimensity-800".to_string(),
    });
    let ingested = profile.ingest_snapshot(&snap);
    assert!(ingested > 0, "detail-mode run must yield profile samples");
    profile
}

/// The acceptance scenario: a 2x slowdown injected into mac-heavy work
/// must surface as the diff's top attribution cell, naming the injected
/// kind, with the measured ratio near the injected factor.
#[test]
fn injected_mac_slowdown_is_attributed_to_mac_cells() {
    let _guard = TESTS.lock().unwrap_or_else(|e| e.into_inner());
    let baseline = collect(&CostModel::default());
    let slowed = collect(&CostModel::default().with_kind_scale(WorkKind::MacHeavy, 2.0));

    let diff = diff_profiles(&baseline, &slowed, &DiffOptions::default());
    assert!(diff.cur_total_us > diff.base_total_us);
    let top = diff.top().expect("a significant cell must surface");
    assert!(
        top.cell.starts_with("mac/"),
        "top attribution cell must name the injected kind, got '{}'",
        top.cell
    );
    assert!(
        top.ratio > 1.5,
        "injected 2x slowdown measured at only {:.2}x",
        top.ratio
    );
    // Every significant mover is a mac cell: nothing else was touched.
    for d in diff.deltas.iter().filter(|d| d.significant) {
        assert!(d.cell.starts_with("mac/"), "spurious mover: {}", d.cell);
    }
    assert!(diff.missing.is_empty());
    assert!(diff.added.is_empty());
    let rendered = diff.render();
    assert!(rendered.contains("mac/"));
}

/// Calibration on a profile measured under an injected mac slowdown must
/// recover a scale near the injected factor for the mac cells, and the
/// calibrated residuals must shrink versus the uncalibrated model.
#[test]
fn calibration_recovers_injected_scale_and_shrinks_residuals() {
    let _guard = TESTS.lock().unwrap_or_else(|e| e.into_inner());
    let skewed = collect(&CostModel::default().with_kind_scale(WorkKind::MacHeavy, 2.0));

    let cal = CalibratedCostModel::fit(&skewed, &CostModel::default());
    let cpu_mac = cal.scale(DeviceKind::Cpu, WorkKind::MacHeavy);
    assert!(
        cpu_mac > 1.3,
        "fitted cpu/mac scale {cpu_mac:.2} must reflect the 2x injection"
    );
    let (uncal, calres) = cal.residual_us();
    assert!(uncal > 0.0);
    assert!(
        calres < uncal,
        "calibrated residual {calres:.1} must shrink below uncalibrated {uncal:.1}"
    );
    // The drift detector names at least one mac cell.
    let drifted = cal.drifted(DRIFT_THRESHOLD);
    assert!(
        drifted.iter().any(|r| r.cell.starts_with("mac/")),
        "drift report must include a mac cell"
    );
    // The calibrated model's mac predictions move toward the measurement.
    let model = cal.to_cost_model();
    let w = tvmnp_hwsim::WorkItem {
        macs: 10_000_000,
        bytes_in: 1 << 18,
        bytes_out: 1 << 16,
        int8: false,
        kind: WorkKind::MacHeavy,
    };
    let analytic = CostModel::default().unscaled().kernel_body_us(
        &w,
        DeviceKind::Cpu,
        tvmnp_hwsim::KernelClass::TvmUntuned,
    );
    let calibrated =
        model.kernel_body_us(&w, DeviceKind::Cpu, tvmnp_hwsim::KernelClass::TvmUntuned);
    assert!((calibrated / analytic - cpu_mac).abs() < 1e-9);
}

/// Fixed seeds in, identical bytes out: the profile JSON and the store
/// artifact must be byte-identical across collections.
#[test]
fn profile_artifacts_are_byte_deterministic() {
    let _guard = TESTS.lock().unwrap_or_else(|e| e.into_inner());
    let mut a = collect(&CostModel::default());
    let mut b = collect(&CostModel::default());
    assert_eq!(a.to_json().to_string(), b.to_json().to_string());

    let dir = std::env::temp_dir().join(format!("tvmnp-profile-det-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ProfileStore::open(dir.join("s1")).unwrap();
    let p1 = store.save(&mut a).unwrap();
    let store2 = ProfileStore::open(dir.join("s2")).unwrap();
    let p2 = store2.save(&mut b).unwrap();
    assert_eq!(p1.file_name(), p2.file_name());
    assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
    // Round-trip through the store preserves the profile exactly.
    let mut loaded = store.load(&a.key).unwrap();
    assert_eq!(loaded.to_json().to_string(), a.to_json().to_string());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without detail mode the executor emits no kind-stamped spans, so
/// ingestion finds nothing — the guard that keeps ordinary telemetry
/// runs (and their utilization aggregates) free of detail spans.
#[test]
fn ingest_without_detail_mode_is_empty() {
    let _guard = TESTS.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::enable();
    telemetry::reset();
    let model = emotion::emotion_model(103);
    let mut compiled = relay_build(
        &model.module,
        TargetMode::Byoc(TargetPolicy::CpuApu),
        CostModel::default(),
    )
    .expect("build");
    compiled.run(&model.sample_inputs(7)).expect("run");
    telemetry::disable();
    let snap = telemetry::snapshot();
    let mut profile = Profile::new(ProfileKey {
        workload: "no-detail".to_string(),
        permutation: "byoc-cpu-apu".to_string(),
        quant: "f32".to_string(),
        soc: "dimensity-800".to_string(),
    });
    assert_eq!(profile.ingest_snapshot(&snap), 0);
    assert_eq!(profile.total_count(), 0);
}
