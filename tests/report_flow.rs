//! Report-layer flow: device utilization reconciles with the executor's
//! measured run, bench records are byte-deterministic, and an injected
//! hwsim slowdown trips the regression gate.
//!
//! Kept as a single test function: the telemetry collector is
//! process-global, so a concurrent test's spans would pollute the
//! snapshot the utilization report is built from.

use tvm_neuropilot::hwsim::WorkKind;
use tvm_neuropilot::models::emotion;
use tvm_neuropilot::prelude::*;
use tvm_neuropilot::report::{self, BenchRecord};
use tvm_neuropilot::telemetry;

#[test]
fn report_flow() {
    utilization_reconciles_with_executor();
    bench_records_are_byte_deterministic();
    injected_slowdown_trips_the_gate();
}

/// Trace one BYOC CPU+APU run and rebuild utilization from the
/// snapshot: busy + idle = span on every device by construction, and
/// the totals account for the executor's own `last_run_us`.
fn utilization_reconciles_with_executor() {
    let model = emotion::emotion_model(55);
    telemetry::enable();
    telemetry::reset();
    let mut compiled = relay_build(
        &model.module,
        TargetMode::Byoc(TargetPolicy::CpuApu),
        CostModel::default(),
    )
    .unwrap();
    let (_, last_run_us) = compiled.run(&model.sample_inputs(3)).unwrap();
    telemetry::disable();
    let snap = telemetry::snapshot();

    let util = report::utilization_from_snapshot(&snap);
    assert!(!util.devices.is_empty(), "no devices in snapshot");
    for d in &util.devices {
        assert!(
            (d.busy_us + d.idle_us - util.span_us).abs() < 1e-6,
            "{}: busy {:.3} + idle {:.3} != span {:.3}",
            d.device,
            d.busy_us,
            d.idle_us,
            util.span_us
        );
        assert!(
            d.busy_us > 0.0,
            "{}: device appears but never ran",
            d.device
        );
    }
    // Per-node spans are the executor's own attribution, so their total
    // busy time matches the reported run and the span cannot exceed it.
    let busy = util.total_busy_us();
    assert!(
        busy >= 0.95 * last_run_us && busy <= last_run_us * 1.0001,
        "busy {busy:.2} us does not reconcile with run {last_run_us:.2} us"
    );
    assert!(
        util.span_us <= last_run_us * 1.0001,
        "span {:.2} exceeds run {last_run_us:.2}",
        util.span_us
    );
}

/// Writing the same record twice yields byte-identical files — the
/// property that makes `BENCH_*.json` diffs trustworthy — and a record
/// survives a write → read → write round trip unchanged.
fn bench_records_are_byte_deterministic() {
    let dir = std::env::temp_dir();
    let a = dir.join("tvmnp_report_flow_a.json");
    let b = dir.join("tvmnp_report_flow_b.json");
    let c = dir.join("tvmnp_report_flow_c.json");
    let make = || {
        let mut r = BenchRecord::new("unit".to_string(), 3);
        r.insert("emotion.byoc-apu.ms".to_string(), &[1.5, 1.25, 2.0]);
        r.insert("emotion.report.util.apu".to_string(), &[0.75]);
        r
    };
    make().write(&a).unwrap();
    make().write(&b).unwrap();
    let bytes = std::fs::read(&a).unwrap();
    assert_eq!(
        bytes,
        std::fs::read(&b).unwrap(),
        "writes must be identical"
    );
    BenchRecord::read(&a).unwrap().write(&c).unwrap();
    assert_eq!(
        bytes,
        std::fs::read(&c).unwrap(),
        "round trip must be lossless"
    );
    for p in [&a, &b, &c] {
        let _ = std::fs::remove_file(p);
    }
}

/// A 2x slowdown injected into one hwsim work kind must register as a
/// regression against the unperturbed baseline, while a record always
/// compares clean against itself.
fn injected_slowdown_trips_the_gate() {
    let model = emotion::emotion_model(55);
    let ms = |cost: CostModel| {
        relay_build(&model.module, TargetMode::Byoc(TargetPolicy::CpuApu), cost)
            .unwrap()
            .estimate_us()
            / 1000.0
    };
    let mut baseline = BenchRecord::new("unit".to_string(), 1);
    baseline.insert("emotion.ms".to_string(), &[ms(CostModel::default())]);
    let mut current = BenchRecord::new("unit".to_string(), 1);
    let slow = CostModel::default().with_kind_scale(WorkKind::parse("mac").unwrap(), 2.0);
    current.insert("emotion.ms".to_string(), &[ms(slow)]);

    let cmp = report::compare(&baseline, &current, 0.05);
    assert!(!cmp.ok(), "2x mac slowdown must trip the gate");
    assert_eq!(cmp.regressions.len(), 1);
    assert!(report::compare(&baseline, &baseline, 0.05).ok());
}
