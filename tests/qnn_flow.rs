//! The QNN flow of paper §3.3: operator-oriented Relay QNN ↔
//! tensor-oriented Neuron IR, parameter propagation through non-QNN ops,
//! and the quantized showcase model end to end.

use tvm_neuropilot::models::{object_detection, zoo};
use tvm_neuropilot::neuropilot::{convert_function, NeuronOpKind};
use tvm_neuropilot::prelude::*;
use tvm_neuropilot::relay::passes::simplify;

/// Converting a partitioned quantized subgraph moves every quantization
/// parameter onto tensors: no Neuron op carries quant attributes, every
/// quantized tensor carries params.
#[test]
fn neuron_ir_is_tensor_oriented() {
    let model = zoo::mobilenet_v1_quant(70);
    let (partitioned, _) = tvm_neuropilot::nir::partition_for_nir(&model.module).unwrap();
    let externals = partitioned.external_functions();
    assert!(!externals.is_empty());
    for name in externals {
        let func = &partitioned.functions[name];
        let graph = convert_function(func).unwrap();
        for t in &graph.tensors {
            if t.dtype.is_quantized() {
                assert!(
                    t.quant.is_some(),
                    "{name}: quantized tensor '{}' lost its parameters",
                    t.name
                );
            }
        }
        // Opcode-level check: quantized conv is plain CONV_2D.
        assert!(graph
            .ops
            .iter()
            .any(|op| matches!(op.kind, NeuronOpKind::Conv2d { .. })));
    }
}

/// Parameters survive the round trip numerically: the Neuron runtime and
/// the Relay interpreter agree bit-exactly on quantized models.
#[test]
fn quantized_roundtrip_bit_exact() {
    for model in [
        zoo::mobilenet_v1_quant(71),
        zoo::mobilenet_v2_quant(72),
        zoo::inception_v3_quant(73),
    ] {
        let inputs = model.sample_inputs(74);
        let reference = run_module(&model.module, &inputs).unwrap();
        let simplified = simplify(&model.module);
        let graph = convert_function(simplified.main()).unwrap();
        let network = tvm_neuropilot::neuropilot::CompiledNetwork::compile(
            graph,
            TargetPolicy::ApuPrefer,
            CostModel::default(),
        )
        .unwrap();
        let ordered: Vec<Tensor> = vec![inputs[&model.input_name].clone()];
        let (outs, _) = network.execute(&ordered).unwrap();
        assert!(outs[0].bit_eq(&reference), "{} diverged", model.name);
    }
}

/// §3.3's propagation: non-QNN ops inside a quantized graph (pools,
/// reshapes, clips) still end up with parameters on their tensors.
#[test]
fn propagation_covers_non_qnn_ops() {
    let model = object_detection::mobilenet_ssd_model(75);
    let (partitioned, _) = tvm_neuropilot::nir::partition_for_nir(&model.module).unwrap();
    for name in partitioned.external_functions() {
        let graph = convert_function(&partitioned.functions[name]).unwrap();
        // Find quant-transparent ops and check their outputs carry params
        // whenever the tensor is quantized.
        for op in &graph.ops {
            if matches!(
                op.kind,
                NeuronOpKind::Reshape { .. } | NeuronOpKind::Clip { .. }
            ) {
                for &o in &op.outputs {
                    let t = &graph.tensors[o];
                    if t.dtype.is_quantized() {
                        assert!(t.quant.is_some(), "{name}: '{}' missing params", t.name);
                    }
                }
            }
        }
    }
}

/// Propagation chains: parameters must flow through *two* consecutive
/// non-QNN ops (reshape feeding concat), not just one hop from the
/// nearest QNN producer.
#[test]
fn propagation_chains_through_reshape_then_concat() {
    use tvm_neuropilot::relay::builder;
    use tvm_neuropilot::relay::expr::{var, Function, Module};
    use tvm_neuropilot::relay::passes::quantize_with_calibration;
    use tvm_neuropilot::relay::{Conv2dAttrs, TensorType};
    use tvm_neuropilot::tensor::rng::TensorRng;

    // conv → reshape (H/W swap) → concat(·,·) on the channel axis: after
    // quantization the reshape and the concat stay plain (non-QNN) ops, so
    // the concat's parameters can only arrive via the reshape's output.
    let mut rng = TensorRng::new(78);
    let x = var("x", TensorType::f32([1, 2, 4, 6]));
    let w = rng.uniform_f32([2, 2, 3, 3], -0.5, 0.5);
    let conv = builder::relu(builder::conv2d(x.clone(), w, Conv2dAttrs::same(1)));
    let reshaped = builder::reshape(conv, vec![1, 2, 6, 4]);
    let y = builder::concatenate(vec![reshaped.clone(), reshaped], 1);
    let module = Module::from_main(Function::new(vec![x], y));

    let calib: Vec<std::collections::HashMap<String, Tensor>> = (0..2)
        .map(|i| {
            let mut rng = TensorRng::new(79 + i);
            let mut m = std::collections::HashMap::new();
            m.insert("x".to_string(), rng.uniform_f32([1, 2, 4, 6], -1.0, 1.0));
            m
        })
        .collect();
    let quantized = quantize_with_calibration(&module, &calib).unwrap();

    let (partitioned, _) = tvm_neuropilot::nir::partition_for_nir(&quantized).unwrap();
    let externals = partitioned.external_functions();
    assert!(!externals.is_empty(), "quantized chain must be offloadable");
    let mut saw_reshape = false;
    let mut saw_concat = false;
    for name in externals {
        let graph = convert_function(&partitioned.functions[name]).unwrap();
        for op in &graph.ops {
            let relevant = match op.kind {
                NeuronOpKind::Reshape { .. } => {
                    saw_reshape = true;
                    true
                }
                NeuronOpKind::Concat { .. } => {
                    saw_concat = true;
                    true
                }
                _ => false,
            };
            if !relevant {
                continue;
            }
            for &o in &op.outputs {
                let t = &graph.tensors[o];
                assert!(t.dtype.is_quantized(), "'{}' should be quantized", t.name);
                assert!(
                    t.quant.is_some(),
                    "{name}: '{}' lost its parameters after two-hop propagation",
                    t.name
                );
            }
        }
    }
    assert!(saw_reshape, "reshape must survive into the Neuron graph");
    assert!(saw_concat, "concat must survive into the Neuron graph");
}

/// The quantized model's artifact is much smaller than its float
/// counterpart — §4.2's motivation for the quantized MobileNet.
#[test]
fn quantized_artifact_smaller_than_float() {
    let cost = CostModel::default();
    let fm = zoo::mobilenet_v1(76);
    let qm = zoo::mobilenet_v1_quant(76);
    let (_, fa) = tvm_neuropilot::byoc::build::relay_build_with_artifact(
        &fm.module,
        TargetMode::TvmOnly,
        cost.clone(),
    )
    .unwrap();
    let (_, qa) = tvm_neuropilot::byoc::build::relay_build_with_artifact(
        &qm.module,
        TargetMode::TvmOnly,
        cost,
    )
    .unwrap();
    let (fa, qa) = (fa.unwrap(), qa.unwrap());
    assert!(
        qa.size_bytes() < fa.size_bytes(),
        "quant artifact {} must be smaller than float {}",
        qa.size_bytes(),
        fa.size_bytes()
    );
}

/// "We found that the performance was similar to the original flow"
/// (§4.2): the QNN BYOC path is at least as fast as the float path for
/// the same architecture on every NeuroPilot-backed permutation.
#[test]
fn qnn_flow_performance_not_worse() {
    let cost = CostModel::default();
    let fm = zoo::mobilenet_v2(77);
    let qm = zoo::mobilenet_v2_quant(77);
    for p in [
        Permutation::ByocCpu,
        Permutation::ByocApu,
        Permutation::ByocCpuApu,
    ] {
        let tf = measure_one(&fm.module, p, &cost).unwrap().time_ms.unwrap();
        let tq = measure_one(&qm.module, p, &cost).unwrap().time_ms.unwrap();
        assert!(tq <= tf * 1.05, "{p}: quant {tq:.3} ms vs float {tf:.3} ms");
    }
}
