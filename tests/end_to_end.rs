//! End-to-end integration: every frontend → Relay → all seven target
//! permutations → identical numerics, paper-shaped timings.

use tvm_neuropilot::models::{anti_spoofing, emotion, object_detection, zoo};
use tvm_neuropilot::prelude::*;

/// All three showcase models agree bit-exactly between the Relay
/// interpreter and every permutation that compiles.
#[test]
fn showcase_models_agree_across_permutations() {
    let cost = CostModel::default();
    let models = [
        anti_spoofing::anti_spoofing_model(1),
        emotion::emotion_model(2),
        object_detection::mobilenet_ssd_model(3),
    ];
    for model in models {
        for p in Permutation::ALL {
            let m = measure_one(&model.module, p, &cost).unwrap();
            if let Some(t) = m.time_ms {
                assert!(t > 0.0, "{} {p}", model.name);
            }
        }
    }
}

/// TVM-only is the slowest compiling permutation for every model in the
/// suite — the paper's headline observation.
#[test]
fn tvm_only_always_slowest() {
    let cost = CostModel::default();
    let mut checked = 0;
    for model in zoo::zoo(500) {
        let ms = measure_all(&model.module, &cost).unwrap();
        let tvm = ms[0].time_ms.expect("TVM-only always compiles");
        for r in &ms[1..] {
            if let Some(t) = r.time_ms {
                assert!(
                    tvm > t,
                    "{}: TVM-only ({tvm:.3} ms) vs {} ({t:.3} ms)",
                    model.name,
                    r.permutation
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 20, "enough comparisons actually happened");
}

/// Single-output models produce bit-identical outputs under every
/// compiling permutation (vs the Relay interpreter).
#[test]
fn numerics_identical_across_backends() {
    let cost = CostModel::default();
    for model in [
        zoo::mobilenet_v1(7),
        zoo::inception_v3(8),
        zoo::mobilenet_v2_quant(9),
    ] {
        let inputs = model.sample_inputs(12);
        let reference = run_module(&model.module, &inputs).unwrap();
        for p in Permutation::ALL {
            match relay_build(&model.module, p.mode(), cost.clone()) {
                Ok(mut compiled) => {
                    let (outs, _) = compiled.run(&inputs).unwrap();
                    assert!(
                        outs[0].bit_eq(&reference),
                        "{} under {p} diverged from the interpreter",
                        model.name
                    );
                }
                Err(tvm_neuropilot::byoc::build::BuildError::Unsupported(_)) => {}
                Err(e) => panic!("{} under {p}: {e}", model.name),
            }
        }
    }
}

/// The QNN-flow payoff of §3.3 / §4.2: for the same architecture, the
/// quantized variant is at least as fast as the float one on every
/// NeuroPilot-backed target ("the performance was similar to the original
/// flow"), and strictly faster on the int8-specialized APU.
#[test]
fn quantized_variant_wins_on_the_apu() {
    let cost = CostModel::default();
    let t = |model: &tvm_neuropilot::models::Model, p: Permutation| {
        measure_one(&model.module, p, &cost)
            .unwrap()
            .time_ms
            .unwrap()
    };
    let float_net = zoo::mobilenet_v1(20);
    let quant_net = zoo::mobilenet_v1_quant(20);
    for p in [
        Permutation::ByocCpu,
        Permutation::ByocApu,
        Permutation::ByocCpuApu,
    ] {
        assert!(t(&quant_net, p) <= t(&float_net, p) * 1.05, "{p}");
    }
    assert!(
        t(&quant_net, Permutation::ByocApu) < t(&float_net, Permutation::ByocApu),
        "int8 must be strictly faster on the APU"
    );
}

/// The full application runs over video and the pipeline changes no
/// result (Listing 5 + §5.2).
#[test]
fn application_video_roundtrip() {
    let cost = CostModel::default();
    let showcase = Showcase::new(1234, ShowcaseAssignment::paper_prototype(), &cost);
    let mut video = SyntheticVideo::new(4321, 64, 64);
    let frames = video.frames(8);
    let seq = showcase.process_video(&frames);
    // Two real-face frames and two spoof-face frames in 8.
    let real_faces: usize = seq.iter().flat_map(|r| &r.faces).filter(|f| f.real).count();
    let spoof_faces: usize = seq
        .iter()
        .flat_map(|r| &r.faces)
        .filter(|f| !f.real)
        .count();
    assert_eq!(real_faces, 2);
    assert_eq!(spoof_faces, 2);
    let pipe = showcase.process_video_pipelined(frames);
    for (a, b) in seq.iter().zip(&pipe) {
        assert_eq!(a.faces, b.faces);
    }
}
