//! End-to-end live observability: the serve path under traces must stay
//! bit-identical to the unobserved path, reassemble into one complete
//! causal span tree per frame at full concurrency, feed an internally
//! consistent stats snapshot, and dump a flight window carrying the
//! injected faults and fallback transitions that explain it.
//!
//! The telemetry collector and event sink are process-global, so every
//! test that touches them serializes through `TESTS`.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use tvm_neuropilot::models::{anti_spoofing, emotion};
use tvm_neuropilot::observe::{
    assemble, attribute, trace_tree, validate_dump, ObserveConfig, ObservePlane, QuantileSketch,
};
use tvm_neuropilot::prelude::*;
use tvm_neuropilot::report::MetricStats;
use tvm_neuropilot::serving::{trace_id_for, PIPELINE};
use tvm_neuropilot::telemetry::{self, trace::SpanIds};
use tvm_neuropilot::vision::{FrameResult, ShowcaseFaults};

static TESTS: Mutex<()> = Mutex::new(());

fn clip(frames: usize) -> Vec<tvm_neuropilot::vision::Frame> {
    SyntheticVideo::new(7, 64, 64).frames(frames)
}

fn assert_same_numerics(a: &[FrameResult], b: &[FrameResult]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.frame_index, y.frame_index);
        assert_eq!(x.objects, y.objects, "frame {}", x.frame_index);
        assert_eq!(x.faces, y.faces, "frame {}", x.frame_index);
        assert_eq!(x.dropped, y.dropped, "frame {}", x.frame_index);
    }
}

/// The GK sketch must agree with `tvmnp-report`'s nearest-rank order
/// statistics within the sketch's rank tolerance: both answers (and the
/// exact nearest-rank value) must fall inside the same ±(⌈εn⌉+1)-rank
/// bracket of the sorted samples.
#[test]
fn sketch_quantiles_agree_with_report_nearest_rank() {
    let epsilon = 0.005;
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut samples = Vec::with_capacity(5000);
    for _ in 0..5000 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        samples.push(((state >> 20) % 1_000_000) as f64 / 100.0);
    }
    let mut sketch = QuantileSketch::new(epsilon);
    for &s in &samples {
        sketch.insert(s);
    }
    let stats = MetricStats::from_samples(&samples);
    let mut sorted = samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    let allowed = (epsilon * n as f64).ceil() as usize + 1;
    let mut check = |q: f64, report_value: f64| {
        let target = ((q * n as f64).ceil() as usize).clamp(1, n);
        let lo = sorted[target.saturating_sub(allowed + 1).max(1) - 1];
        let hi = sorted[(target + allowed).min(n) - 1];
        let got = sketch.query(q);
        assert!(
            (lo..=hi).contains(&got),
            "sketch q{q}: {got} outside rank bracket [{lo}, {hi}]"
        );
        assert!(
            (lo..=hi).contains(&report_value),
            "report q{q}: {report_value} outside rank bracket [{lo}, {hi}]"
        );
    };
    check(0.50, stats.median);
    check(0.95, stats.p95);
}

/// Deterministic splitmix64 sample stream for the merge tests.
fn sketch_stream(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        out.push((z % 1_000_000) as f64 / 100.0);
    }
    out
}

fn sketch_of(samples: &[f64], epsilon: f64) -> QuantileSketch {
    let mut s = QuantileSketch::new(epsilon);
    for &v in samples {
        s.insert(v);
    }
    s
}

/// Merge must be associative in the summary it reports: (a ⊕ b) ⊕ c and
/// a ⊕ (b ⊕ c) agree exactly on count/sum/min/max, and their quantile
/// answers land in the same rank bracket of the pooled sorted data. (The
/// internal entry lists may differ — the guarantee is the ε-rank bound,
/// not bitwise state.)
#[test]
fn sketch_merge_is_associative_on_summaries() {
    let epsilon = 0.01;
    let parts = [
        sketch_stream(1, 3000),
        sketch_stream(2, 2000),
        sketch_stream(3, 1000),
    ];
    let [a, b, c] = parts.clone().map(|p| sketch_of(&p, epsilon));

    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);
    let mut bc = b.clone();
    bc.merge(&c);
    let mut right = a.clone();
    right.merge(&bc);

    assert_eq!(left.count(), right.count());
    assert_eq!(left.sum(), right.sum());
    assert_eq!(left.min(), right.min());
    assert_eq!(left.max(), right.max());

    let mut pooled: Vec<f64> = parts.concat();
    pooled.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let n = pooled.len();
    // Merging k ε-sketches costs at most kε rank error.
    let allowed = (3.0 * epsilon * n as f64).ceil() as usize + 1;
    for q in [0.1, 0.5, 0.9, 0.99] {
        let target = ((q * n as f64).ceil() as usize).clamp(1, n);
        let lo = pooled[target.saturating_sub(allowed + 1).max(1) - 1];
        let hi = pooled[(target + allowed).min(n) - 1];
        for (label, s) in [("left", &mut left), ("right", &mut right)] {
            let got = s.query(q);
            assert!(
                (lo..=hi).contains(&got),
                "{label} q{q}: {got} outside rank bracket [{lo}, {hi}]"
            );
        }
    }
}

/// Eight shards merged into one sketch must answer like a single sketch
/// fed the whole stream: identical count/sum/min/max, and quantiles
/// inside the pooled data's rank bracket — the property the profile
/// store leans on when it merges per-run cells.
#[test]
fn sketch_shard_merge_matches_single_stream() {
    let epsilon = 0.01;
    let full = sketch_stream(42, 8000);
    let mut single = sketch_of(&full, epsilon);

    let mut merged = QuantileSketch::new(epsilon);
    for shard in full.chunks(1000) {
        merged.merge(&sketch_of(shard, epsilon));
    }

    assert_eq!(merged.count(), single.count());
    assert_eq!(merged.min(), single.min());
    assert_eq!(merged.max(), single.max());
    assert!((merged.sum() - single.sum()).abs() < 1e-6 * single.sum().abs());

    let mut sorted = full.clone();
    sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let n = sorted.len();
    let allowed = (8.0 * epsilon * n as f64).ceil() as usize + 1;
    for q in [0.05, 0.5, 0.95] {
        let target = ((q * n as f64).ceil() as usize).clamp(1, n);
        let lo = sorted[target.saturating_sub(allowed + 1).max(1) - 1];
        let hi = sorted[(target + allowed).min(n) - 1];
        for (label, s) in [("merged", &mut merged), ("single", &mut single)] {
            let got = s.query(q);
            assert!(
                (lo..=hi).contains(&got),
                "{label} q{q}: {got} outside rank bracket [{lo}, {hi}]"
            );
        }
    }
}

/// With the collector disabled, serving records nothing at all — the
/// pre-observability hot path — and stays bit-identical across
/// concurrency levels.
#[test]
fn untraced_serving_records_no_spans_and_stays_identical() {
    let _guard = TESTS.lock().unwrap();
    telemetry::enable();
    telemetry::reset();
    telemetry::disable();
    let pool = SessionPool::new(
        900,
        &serving_rotation(),
        &CostModel::default(),
        Arc::new(ArtifactCache::new(usize::MAX)),
    );
    let frames = clip(8);
    let sequential = pool.serve(&frames, 1);
    let concurrent = pool.serve(&frames, 4);
    assert_eq!(sequential, concurrent);
    let snap = telemetry::snapshot();
    assert!(
        snap.events.is_empty(),
        "disabled collector must record nothing, got {} span(s)",
        snap.events.len()
    );
}

/// The tentpole scenario: 256 frames at concurrency 8 with injected
/// transient dispatch faults, fully observed. Outputs stay bit-identical
/// to a fault-free unobserved run; the spans reassemble into exactly one
/// complete causal tree per frame; worker lanes are distinct; the stats
/// snapshot is internally consistent and reconciles with the span sums;
/// and the flight dump written on fallback-chain exhaustion carries the
/// injected faults and the fallback transitions.
#[test]
fn observed_256_frame_serve_reassembles_and_dumps() {
    let _guard = TESTS.lock().unwrap();
    let tmp = std::env::temp_dir().join(format!("tvmnp-observe-flow-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let flight_dir = tmp.join("flight");
    let stats_path = tmp.join("stats.jsonl");
    let frames = clip(256);

    // Fault-free, unobserved reference. Concurrency 8 here too: serving
    // is deterministic by frame index, so this is the same output as a
    // sequential pass at an eighth of the wall-clock.
    telemetry::disable();
    let clean = SessionPool::new(
        900,
        &serving_rotation(),
        &CostModel::default(),
        Arc::new(ArtifactCache::new(usize::MAX)),
    )
    .serve(&frames, 8);

    // Observed run with transient dispatch faults on the APU.
    let plane = Arc::new(
        ObservePlane::new(ObserveConfig {
            flight_capacity: 1 << 15,
            flight_dir: Some(flight_dir.clone()),
            stats_path: Some(stats_path.clone()),
            stats_every: 64,
            ..Default::default()
        })
        .unwrap(),
    );
    telemetry::enable();
    telemetry::reset();
    plane.install();
    let faults = ShowcaseFaults {
        injector: Arc::new(FaultInjector::new(
            FaultPlan::seeded(11).transient_dispatch(DeviceKind::Apu, 1),
        )),
        retry: RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        },
    };
    let pool = SessionPool::new_with_faults(
        900,
        &serving_rotation(),
        &CostModel::default(),
        Arc::new(ArtifactCache::new(usize::MAX)),
        faults,
    );
    let served = pool.serve_observed(&frames, 8, &plane);
    assert_same_numerics(&served, &clean);

    // Exhaust a fallback chain so the flight recorder dumps: APU and CPU
    // both lost leaves no permutation standing.
    let model = anti_spoofing::anti_spoofing_model(80);
    let mut session = ResilientSession::new(
        model.module.clone(),
        CostModel::default(),
        FaultPlan::seeded(3)
            .device_lost(DeviceKind::Apu)
            .device_lost(DeviceKind::Cpu),
        ResiliencePolicy::default(),
    );
    let err = session.run(&model.name, Permutation::NpApu, &model.sample_inputs(7));
    assert!(err.is_err(), "both devices lost must exhaust the chain");

    plane.finish().unwrap();
    ObservePlane::uninstall();
    telemetry::disable();
    let snap = telemetry::snapshot();

    // One complete causal tree per frame, rooted at serve.frame, under
    // the frame's deterministic trace id.
    let trees = assemble(&snap);
    let mut frame_traces = BTreeSet::new();
    for tree in &trees {
        let Some(root) = tree.root() else { continue };
        if root.event.name != "serve.frame" {
            continue;
        }
        assert!(
            tree.complete,
            "trace {} has an incomplete tree ({} node(s), {} root(s))",
            tree.trace_id,
            tree.nodes.len(),
            tree.roots.len()
        );
        frame_traces.insert(tree.trace_id);
    }
    assert_eq!(frame_traces.len(), 256, "expected one tree per frame");
    for f in &frames {
        assert!(
            frame_traces.contains(&trace_id_for(f.index)),
            "frame {} has no complete trace tree",
            f.index
        );
    }

    // Concurrent workers pin their spans to distinct stable lanes.
    let lanes: BTreeSet<u64> = snap
        .events
        .iter()
        .filter(|e| e.tid >= telemetry::WORKER_LANE_BASE)
        .map(|e| e.tid)
        .collect();
    assert!(
        (2..=8).contains(&lanes.len()),
        "expected 2..=8 worker lanes, got {lanes:?}"
    );

    // Stats snapshot: quantiles monotone, and the frame series
    // reconciles with the wait + compute split.
    let stats = plane.snapshot();
    assert_eq!(stats.consistency_violation(), None);
    let frame_series = stats
        .series_named("frame_us", &[("pipeline", PIPELINE)])
        .expect("frame series recorded");
    assert_eq!(frame_series.count, 256);
    let sum = |name: &str, labels: &[(&str, &str)]| {
        stats.series_named(name, labels).map_or(0.0, |s| s.sum_us)
    };
    let split = sum(
        "wait_us",
        &[("pipeline", PIPELINE), ("reason", "admission")],
    ) + sum("wait_us", &[("pipeline", PIPELINE), ("reason", "device")])
        + sum("compute_us", &[("pipeline", PIPELINE)]);
    let rel = (frame_series.sum_us - split).abs() / frame_series.sum_us.max(1.0);
    assert!(
        rel < 1e-9,
        "frame_us sum {} must equal wait+compute split {split}",
        frame_series.sum_us
    );

    // Flight dumps: schema-valid, and between them they carry the
    // injected dispatch faults, the fallback transitions, and the
    // exhaustion that triggered the dump.
    let dumps = plane.dump_paths();
    assert!(!dumps.is_empty(), "exhaustion must trigger a flight dump");
    let mut kinds = BTreeSet::new();
    for path in &dumps {
        let doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(validate_dump(&doc), None, "{}", path.display());
        for e in doc["events"].as_array().unwrap() {
            kinds.insert(e["kind"].as_str().unwrap().to_string());
        }
    }
    for want in [
        "fault.injected",
        "resilience.fallback",
        "resilience.exhausted",
    ] {
        assert!(kinds.contains(want), "no dump carries '{want}': {kinds:?}");
    }

    // The stats stream is valid JSONL ending in the final flush.
    let text = std::fs::read_to_string(&stats_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 2, "periodic + final lines expected");
    for line in &lines {
        let v: serde_json::Value = serde_json::from_str(line).unwrap();
        assert_eq!(v["type"].as_str(), Some("stats"));
    }
    let last: serde_json::Value = serde_json::from_str(lines[lines.len() - 1]).unwrap();
    assert_eq!(last["reason"].as_str(), Some("final"));

    // Tail attribution names contributors for the pipeline's p99 frames.
    let tail = attribute(&stats, &trees, PIPELINE).expect("tail attribution");
    assert!(tail.tail_frames >= 1);
    assert!(
        !tail.contributors.is_empty(),
        "tail frames must have named contributors"
    );

    let _ = std::fs::remove_dir_all(&tmp);
}

/// A fallback re-dispatch recorded while a frame trace is active must
/// land as a child span of that frame's trace — the causal link between
/// "this frame was slow" and "because it degraded off the APU".
#[test]
fn fallback_redispatch_is_a_child_span_of_the_frame_trace() {
    let _guard = TESTS.lock().unwrap();
    telemetry::enable();
    telemetry::reset();
    let trace_id = 424_242u64;
    let root = telemetry::alloc_span_id();
    let model = emotion::emotion_model(7);
    {
        let _trace = telemetry::begin_trace(
            trace_id,
            root,
            vec![("pipeline".to_string(), "test".to_string())],
        );
        let mut session = ResilientSession::new(
            model.module.clone(),
            CostModel::default(),
            FaultPlan::seeded(7).device_lost(DeviceKind::Apu),
            ResiliencePolicy {
                breaker_threshold: 1,
                ..ResiliencePolicy::default()
            },
        );
        let out = session
            .run(&model.name, Permutation::NpApu, &model.sample_inputs(7))
            .expect("chain must recover on the CPU");
        assert!(out.degraded(), "APU loss must force a fallback");
    }
    tvm_neuropilot::telemetry::record_sim_span_traced(
        SpanIds {
            trace: trace_id,
            span: root,
            parent: 0,
        },
        "serve.frame",
        0.0,
        1000.0,
        vec![("pipeline".to_string(), "test".to_string())],
    );
    telemetry::disable();

    let trees = assemble(&telemetry::snapshot());
    let tree = trees
        .iter()
        .find(|t| t.trace_id == trace_id)
        .expect("frame trace assembled");
    assert!(tree.complete, "fallback spans must not orphan the tree");
    assert_eq!(tree.root().unwrap().event.name, "serve.frame");
    let fallbacks: Vec<_> = tree.named("resilience.fallback").collect();
    assert!(
        !fallbacks.is_empty(),
        "fallback transition missing from the frame trace"
    );
    for f in &fallbacks {
        assert_ne!(f.parent_id, 0, "fallback must be a child, not a root");
        assert!(
            trace_tree::arg(&f.event, "cause").is_some(),
            "fallback span must carry its cause"
        );
    }
}
